"""ZigBee / IEEE 802.15.4: device types, CSMA-CA, three topologies.

The source text (§2.1, Fig 1.4) describes ZigBee as a 250 kb/s,
low-power mesh standard with two device classes — full-function devices
(FFDs: coordinator / router / device) and reduced-function devices
(RFDs: leaf endpoints only) — and three topologies:

* **star**: every device talks only to the PAN coordinator,
* **mesh**: any FFD routes for any other; RFDs hang off FFDs,
* **cluster tree**: a special mesh where routing follows parent/child
  links, RFDs strictly as leaves.

The MAC is unslotted CSMA-CA with the standard's constants: 320 µs unit
backoff period (20 symbols at 62.5 ksym/s), BE ∈ [3, 5], at most 4
backoff attempts, 3 retransmissions on missing ACK.  The channel is a
single broadcast medium with disc connectivity (``range_m``): two
transmissions overlapping in time at a receiver collide.

Routing is computed on the connectivity graph (mesh: shortest path over
FFDs via :mod:`networkx`; tree: up to the common ancestor and down) and
frames hop node by node, each hop running its own CSMA-CA + ACK.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

import networkx as nx

from ..core.engine import Simulator
from ..core.errors import ConfigurationError, ProtocolError
from ..core.stats import Counter, SampleStat
from ..core.topology import Position

DATA_RATE_BPS = 250_000.0
SYMBOL_TIME = 16e-6
UNIT_BACKOFF = 20 * SYMBOL_TIME      # 320 us
TURNAROUND = 12 * SYMBOL_TIME        # rx/tx turnaround
ACK_WAIT = 54 * SYMBOL_TIME
MAC_HEADER_BYTES = 11
ACK_BYTES = 5
PREAMBLE_TIME = 40 * SYMBOL_TIME / 4  # SHR+PHR ~ 6 bytes at 250kb/s

MIN_BE = 3
MAX_BE = 5
MAX_CSMA_BACKOFFS = 4
MAX_FRAME_RETRIES = 3


class DeviceType(Enum):
    COORDINATOR = "coordinator"  # FFD, exactly one per PAN
    ROUTER = "router"            # FFD
    END_DEVICE = "end-device"    # RFD: leaf only, never routes


class Topology(Enum):
    STAR = "star"
    MESH = "mesh"
    CLUSTER_TREE = "cluster-tree"


@dataclass
class _Transmission:
    sender: "ZigbeeNode"
    start: float
    end: float


class ZigbeeNode:
    """One 802.15.4 device."""

    def __init__(self, name: str, position: Position,
                 device_type: DeviceType):
        self.name = name
        self.position = position
        self.device_type = device_type
        self.parent: Optional["ZigbeeNode"] = None
        self.children: List["ZigbeeNode"] = []
        self.counters = Counter()
        self._receive_hook: Optional[Callable[[str, bytes, Dict], None]] = None
        self._busy = False  # processing one frame at a time

    @property
    def is_ffd(self) -> bool:
        return self.device_type != DeviceType.END_DEVICE

    def on_receive(self, hook: Callable[[str, bytes, Dict], None]) -> None:
        self._receive_hook = hook

    def deliver(self, source: str, payload: bytes, meta: Dict) -> None:
        self.counters.incr("delivered")
        if self._receive_hook is not None:
            self._receive_hook(source, payload, meta)


class ZigbeePan:
    """A personal area network: nodes, channel, routing, CSMA-CA MAC."""

    def __init__(self, sim: Simulator, topology: Topology,
                 range_m: float = 30.0):
        if range_m <= 0:
            raise ConfigurationError(f"range must be positive: {range_m}")
        self.sim = sim
        self.topology = topology
        self.range_m = range_m
        self.nodes: Dict[str, ZigbeeNode] = {}
        self.coordinator: Optional[ZigbeeNode] = None
        self.counters = Counter()
        self.latency = SampleStat()
        self.hop_counts = SampleStat()
        self._rng = sim.rng.stream("zigbee")
        self._active: List[_Transmission] = []
        self._graph: Optional[nx.Graph] = None

    # --- membership ------------------------------------------------------------

    def add_node(self, node: ZigbeeNode,
                 parent: Optional[ZigbeeNode] = None) -> ZigbeeNode:
        if node.name in self.nodes:
            raise ConfigurationError(f"duplicate node name {node.name}")
        if node.device_type == DeviceType.COORDINATOR:
            if self.coordinator is not None:
                raise ConfigurationError("PAN already has a coordinator")
            self.coordinator = node
        else:
            if parent is None:
                raise ConfigurationError(
                    f"{node.name} needs a parent (coordinator or router)")
            if not parent.is_ffd:
                raise ConfigurationError(
                    "an RFD cannot be a parent (RFDs are leaves)")
            if parent.name not in self.nodes:
                raise ConfigurationError("parent must be added first")
            if node.position.distance_to(parent.position) > self.range_m:
                raise ConfigurationError(
                    f"{node.name} is out of range of parent {parent.name}")
            node.parent = parent
            parent.children.append(node)
        self.nodes[node.name] = node
        self._graph = None  # invalidate routes
        return node

    # --- connectivity & routing --------------------------------------------------

    def in_range(self, a: ZigbeeNode, b: ZigbeeNode) -> bool:
        return a.position.distance_to(b.position) <= self.range_m

    def _connectivity(self) -> nx.Graph:
        if self._graph is not None:
            return self._graph
        graph = nx.Graph()
        names = list(self.nodes)
        graph.add_nodes_from(names)
        for i, name_a in enumerate(names):
            node_a = self.nodes[name_a]
            for name_b in names[i + 1:]:
                node_b = self.nodes[name_b]
                if not self.in_range(node_a, node_b):
                    continue
                # RFDs only link to their parent (they sleep otherwise).
                if not node_a.is_ffd and node_b is not node_a.parent:
                    continue
                if not node_b.is_ffd and node_a is not node_b.parent:
                    continue
                graph.add_edge(name_a, name_b)
        self._graph = graph
        return graph

    def route(self, source: str, destination: str) -> Optional[List[str]]:
        """The node-name path a frame follows, inclusive of endpoints."""
        if source == destination:
            return [source]
        if self.topology == Topology.STAR:
            assert self.coordinator is not None
            hub = self.coordinator.name
            if source == hub:
                return [hub, destination]
            if destination == hub:
                return [source, hub]
            return [source, hub, destination]
        if self.topology == Topology.CLUSTER_TREE:
            return self._tree_route(source, destination)
        graph = self._connectivity()
        try:
            return nx.shortest_path(graph, source, destination)
        except nx.NetworkXNoPath:
            return None

    def _ancestors(self, node: ZigbeeNode) -> List[ZigbeeNode]:
        chain = [node]
        while chain[-1].parent is not None:
            chain.append(chain[-1].parent)
        return chain

    def _tree_route(self, source: str, destination: str
                    ) -> Optional[List[str]]:
        src = self.nodes[source]
        dst = self.nodes[destination]
        up = self._ancestors(src)
        down = self._ancestors(dst)
        up_names = [node.name for node in up]
        down_names = [node.name for node in down]
        common = None
        for name in up_names:
            if name in down_names:
                common = name
                break
        if common is None:
            return None
        path_up = up_names[:up_names.index(common) + 1]
        path_down = list(reversed(down_names[:down_names.index(common)]))
        return path_up + path_down

    # --- the channel ------------------------------------------------------------

    def _channel_clear_at(self, node: ZigbeeNode) -> bool:
        now = self.sim.now
        self._active = [tx for tx in self._active if tx.end > now]
        return not any(self.in_range(tx.sender, node) for tx in self._active
                       if tx.sender is not node)

    def _collided(self, tx: _Transmission, receiver: ZigbeeNode) -> bool:
        for other in self._active:
            if other is tx or other.sender is receiver:
                continue
            overlaps = other.start < tx.end and tx.start < other.end
            if overlaps and self.in_range(other.sender, receiver):
                return True
        return False

    def _frame_airtime(self, payload_bytes: int) -> float:
        return PREAMBLE_TIME + \
            (MAC_HEADER_BYTES + payload_bytes) * 8 / DATA_RATE_BPS

    # --- traffic API ------------------------------------------------------------

    def send(self, source: str, destination: str, payload: bytes,
             meta: Optional[Dict[str, Any]] = None) -> bool:
        """Launch a frame; returns False when no route exists.

        Delivery (or loss) is reported through counters and the
        destination node's receive hook.
        """
        if source not in self.nodes or destination not in self.nodes:
            raise ProtocolError("unknown source or destination")
        path = self.route(source, destination)
        self.counters.incr("offered")
        if path is None or len(path) < 2:
            self.counters.incr("no_route")
            return False
        context = dict(meta or {})
        context.setdefault("sent_at", self.sim.now)
        context["hops"] = 0
        self._hop(path, 0, payload, context)
        return True

    def _hop(self, path: List[str], index: int, payload: bytes,
             context: Dict[str, Any]) -> None:
        sender = self.nodes[path[index]]
        receiver = self.nodes[path[index + 1]]
        self._csma_attempt(sender, receiver, path, index, payload, context,
                           backoff_exponent=MIN_BE, backoffs=0, retries=0)

    def _csma_attempt(self, sender: ZigbeeNode, receiver: ZigbeeNode,
                      path: List[str], index: int, payload: bytes,
                      context: Dict[str, Any], backoff_exponent: int,
                      backoffs: int, retries: int) -> None:
        delay = self._rng.randint(0, (1 << backoff_exponent) - 1) \
            * UNIT_BACKOFF
        self.sim.schedule(delay, self._after_backoff, sender, receiver,
                          path, index, payload, context, backoff_exponent,
                          backoffs, retries)

    def _after_backoff(self, sender: ZigbeeNode, receiver: ZigbeeNode,
                       path: List[str], index: int, payload: bytes,
                       context: Dict[str, Any], backoff_exponent: int,
                       backoffs: int, retries: int) -> None:
        if not self._channel_clear_at(sender):
            backoffs += 1
            self.counters.incr("cca_busy")
            if backoffs > MAX_CSMA_BACKOFFS:
                self.counters.incr("channel_access_failures")
                return
            self._csma_attempt(sender, receiver, path, index, payload,
                               context,
                               min(backoff_exponent + 1, MAX_BE),
                               backoffs, retries)
            return
        airtime = self._frame_airtime(len(payload))
        tx = _Transmission(sender, self.sim.now, self.sim.now + airtime)
        self._active.append(tx)
        sender.counters.incr("tx_frames")
        self.sim.schedule(airtime + TURNAROUND, self._tx_done, tx, sender,
                          receiver, path, index, payload, context,
                          retries)

    def _tx_done(self, tx: _Transmission, sender: ZigbeeNode,
                 receiver: ZigbeeNode, path: List[str], index: int,
                 payload: bytes, context: Dict[str, Any],
                 retries: int) -> None:
        collided = self._collided(tx, receiver) or \
            not self.in_range(sender, receiver)
        if collided:
            self.counters.incr("collisions")
            if retries >= MAX_FRAME_RETRIES:
                self.counters.incr("dropped")
                return
            self._csma_attempt(sender, receiver, path, index, payload,
                               context, MIN_BE, 0, retries + 1)
            return
        context["hops"] += 1
        if index + 1 == len(path) - 1:
            self.counters.incr("received")
            self.latency.add(self.sim.now - context["sent_at"])
            self.hop_counts.add(context["hops"])
            receiver.deliver(path[0], payload, dict(context))
        else:
            receiver.counters.incr("relayed")
            self._hop(path, index + 1, payload, context)

    # --- metrics -----------------------------------------------------------------

    @property
    def delivery_ratio(self) -> float:
        offered = self.counters.get("offered") - self.counters.get("no_route")
        if offered <= 0:
            return math.nan
        return self.counters.get("received") / offered
