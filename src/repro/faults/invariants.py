"""Runtime invariant checking for strict-mode simulation runs.

The simulator's correctness rests on a handful of properties that no
single unit test can pin down across every scenario: the kernel clock
never runs backward, NAV reservations never exceed the longest legal
frame duration, the batched backoff countdown lands on exactly the
instant the per-slot reference would, the relaxed-math interference
accumulator never drifts negative or sticks above zero on quiet air,
converged routing tables are loop-free, and — at quiescence — the
``pending_events`` counter agrees with a literal census of the heap.

:class:`InvariantChecker` sweeps all of them periodically from inside
the event loop.  It is **opt-in** (strict mode): the checks cost real
time — see PERFORMANCE.md — and a default-off checker guarantees that
enabling it can never perturb a baseline run's event stream, because it
only *reads* simulation state and schedules its own independent
periodic event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.engine import PeriodicTask, Simulator
from ..core.errors import InvariantViolation
from ..mac.dcf import DcfMac

#: Longest NAV a legal frame can set: the Duration/ID field is 15 bits
#: of microseconds (0x0000-0x7FFF are durations; values through 0xFFFF
#: exist but >= 0x8000 are PS-Poll AIDs / reserved).  We allow the full
#: 16-bit ceiling — anything beyond it means corrupted duration math,
#: not an aggressive-but-legal reservation.
NAV_MAX_LEGAL = 0xFFFF * 1e-6

_EPS = 1e-9


@dataclass(frozen=True)
class Violation:
    """One failed invariant check."""

    time: float
    check: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return (f"[t={self.time:.9f}] {self.check} violated by "
                f"{self.subject}: {self.detail}")


class InvariantChecker:
    """Periodic structural audit of live simulation state.

    Register what to watch (:meth:`watch_medium` auto-discovers every
    DCF MAC attached to the medium's radios — including ones attached
    *after* registration, since discovery reruns each tick), then
    :meth:`install` to begin sweeping every ``interval`` seconds of
    simulated time.  With ``strict=True`` (the default) the first
    violation raises :class:`~repro.core.errors.InvariantViolation`,
    crashing the run at the instant the state went bad; with
    ``strict=False`` violations accumulate in :attr:`violations` for
    post-run inspection.
    """

    def __init__(self, sim: Simulator, interval: float = 0.05,
                 strict: bool = True, route_settle: float = 0.3,
                 shard: Optional[int] = None):
        self.sim = sim
        self.interval = interval
        self.strict = strict
        #: Per-shard mode (sharded executor workers): stamps every
        #: violation subject with the shard index so a strict failure
        #: deep inside a worker process names its shard when the
        #: coordinator surfaces it.  The kernel/MAC/PHY checks are
        #: unchanged — each worker owns a full kernel, so clock and
        #: heap monotonicity mean exactly what they mean single-process.
        #: The one *cross*-shard invariant (boundary records merge in
        #: pinned ``(time, shard, seq)`` order) cannot be seen from any
        #: worker; the coordinator audits it via
        #: :meth:`check_merge_order`.
        self.shard = shard
        #: A routing table only has to be loop-free once it is
        #: *quiescent*: transient loops during convergence are expected
        #: distance-vector behaviour.  A mesh counts as quiescent when
        #: no watched node updated any entry within `route_settle`.
        self.route_settle = route_settle
        self.violations: List[Violation] = []
        self.checks_run = 0
        self._media: List = []
        self._macs: List[DcfMac] = []
        self._meshes: List[Sequence] = []
        self._task: Optional[PeriodicTask] = None
        self._last_now = sim.now

    # --- registration ------------------------------------------------------

    def watch_medium(self, medium) -> "InvariantChecker":
        """Audit every DCF MAC riding a radio on ``medium``, plus the
        medium's fast-mode interference accumulators."""
        self._media.append(medium)
        return self

    def watch_mac(self, mac: DcfMac) -> "InvariantChecker":
        """Audit one MAC explicitly (no medium needed)."""
        self._macs.append(mac)
        return self

    def watch_mesh(self, nodes: Sequence) -> "InvariantChecker":
        """Audit a set of mesh nodes for routing loops once their
        tables are quiescent."""
        self._meshes.append(list(nodes))
        return self

    def install(self) -> "InvariantChecker":
        """Begin periodic sweeps (first sweep one interval from now)."""
        if self._task is None:
            self._task = PeriodicTask(self.sim, self.interval,
                                      self.check_now, offset=self.interval)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # --- checking ----------------------------------------------------------

    def _fail(self, check: str, subject: str, detail: str) -> None:
        if self.shard is not None:
            subject = f"shard{self.shard}:{subject}"
        violation = Violation(self.sim.now, check, subject, detail)
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolation(str(violation))

    @staticmethod
    def check_merge_order(records, tail: Optional[dict] = None) -> None:
        """Audit the sharded executor's cross-shard merge invariant.

        ``records`` is one coordinator round's boundary batch; each
        record's first three fields must be ``(time, shard, seq)``.
        Two properties are enforced: the batch is sorted by that key
        (the pinned merge order two byte-identical runs rely on), and —
        across rounds, via the caller-held ``tail`` dict mapping shard
        to its last ``(time, seq)`` — every shard's export stream is
        strictly increasing.  Always strict: a violation means the
        determinism contract is already broken, so it raises
        :class:`~repro.core.errors.InvariantViolation` immediately.
        """
        previous = None
        for record in records:
            key = (record[0], record[1], record[2])
            if previous is not None and key < previous:
                raise InvariantViolation(
                    f"cross-shard-merge-order: record {key!r} after "
                    f"{previous!r} in one round's batch")
            previous = key
            if tail is not None:
                shard = record[1]
                mark = (record[0], record[2])
                last = tail.get(shard)
                # A shard's export stream must move strictly forward:
                # time may repeat only with a fresh (larger) seq, and
                # the seq counter itself never repeats or rewinds even
                # when time advances.
                if last is not None \
                        and (mark[0] < last[0] or mark[1] <= last[1]):
                    raise InvariantViolation(
                        f"cross-shard-merge-order: shard {shard} export "
                        f"{mark!r} not after previous {last!r}")
                tail[shard] = mark

    def check_now(self) -> None:
        """Run every registered check once, immediately."""
        self.checks_run += 1
        self._check_kernel()
        for mac in self._iter_macs():
            self._check_mac(mac)
        for medium in self._media:
            if not medium.exact:
                self._check_fast_accumulators(medium)
        for nodes in self._meshes:
            self._check_loop_free(nodes)

    def _iter_macs(self):
        seen = set()
        for mac in self._macs:
            if id(mac) not in seen:
                seen.add(id(mac))
                yield mac
        for medium in self._media:
            for radio in medium._radios:
                listener = radio._listener
                if isinstance(listener, DcfMac) and id(listener) not in seen:
                    seen.add(id(listener))
                    yield listener

    # Kernel: the clock is monotone and the heap never holds the past.
    def _check_kernel(self) -> None:
        now = self.sim.now
        if now < self._last_now:
            self._fail("clock-monotonic", "kernel",
                       f"now={now!r} < previous {self._last_now!r}")
        self._last_now = now
        heap = self.sim._heap
        if heap and heap[0][0] + _EPS < now:
            self._fail("heap-monotonic", "kernel",
                       f"heap head at {heap[0][0]!r} behind now={now!r}")

    # Kernel bookkeeping: scheduled - executed - cancelled must equal a
    # literal census of live heap entries.  NOT part of the periodic
    # sweep: the run loop's until-only fast branch keeps the executed
    # counter in a local flushed at exit, so a mid-run sweep would read
    # a stale figure and false-positive.  Call it between runs.
    def check_counter_parity(self) -> None:
        """Audit ``pending_events`` against the live heap, at quiescence.

        ``Simulator.pending_events`` is derived bookkeeping
        (``scheduled - executed - cancelled``); the heap is ground
        truth.  A live entry is a fire-and-forget ``schedule_fast``
        record (always live until popped), a :class:`Timer` entry whose
        version matches the timer's current armed deadline, or a
        pending :class:`EventHandle`.  Any disagreement means a kernel
        implementation (the pure-Python reference or the compiled
        ``repro.core._ckernel``) dropped or double-counted an event —
        exactly the drift a kernel swap could otherwise leak silently.

        Only meaningful while no :meth:`Simulator.run` is in flight:
        the until-only fast branch batches the executed counter in a
        run-loop local, so mid-run the stored counter is legitimately
        stale.  Call it after ``run()`` returns (e.g. from a test or a
        macro epilogue), not from the periodic :meth:`check_now` sweep.
        """
        self.checks_run += 1
        sim = self.sim
        live = 0
        for entry in sim._heap:
            event = entry[2]
            if event is None:
                live += 1       # fire-and-forget: live until popped
            elif len(entry) == 4:
                # Timer entry: live iff it carries the armed deadline's
                # version; superseded/cancelled versions are lazy trash.
                if event._armed and event._version == entry[3]:
                    live += 1
            elif not event._cancelled and not event._fired:
                live += 1       # pending EventHandle
        pending = sim.pending_events
        if pending != live:
            self._fail(
                "counter-parity", "kernel",
                f"pending_events={pending} (scheduled={sim._scheduled} "
                f"- executed={sim._events_executed} - cancelled="
                f"{sim._cancelled_events}) but {live} live heap "
                f"entries of {len(sim._heap)}")

    # MAC: NAV within legal bounds; batched countdown equals the
    # per-slot reference left-fold.
    def _check_mac(self, mac: DcfMac) -> None:
        remaining_nav = mac.nav.until - self.sim.now
        if remaining_nav > NAV_MAX_LEGAL + _EPS:
            self._fail("nav-legal-duration", str(mac.address),
                       f"NAV holds {remaining_nav!r}s, legal max "
                       f"{NAV_MAX_LEGAL!r}s")
        countdown = mac._countdown
        if countdown._armed and mac._countdown_remaining > 0:
            # KEEP IN SYNC with DcfMac._ifs_expired: the reference
            # expiry is the same left-fold (anchor + slot + slot ...)
            # the per-slot countdown would have produced.
            expiry = mac._countdown_anchor
            slot = mac._slot_time
            for _ in range(mac._countdown_remaining):
                expiry += slot
            if expiry != countdown._time:
                self._fail(
                    "backoff-left-fold", str(mac.address),
                    f"batched expiry {countdown._time!r} != per-slot "
                    f"reference {expiry!r} (anchor="
                    f"{mac._countdown_anchor!r}, "
                    f"remaining={mac._countdown_remaining})")

    # PHY fast mode: the incident-power accumulator may carry bounded
    # float dust while arrivals overlap, but must never go negative and
    # must read exactly 0.0 on quiet air (the empty-table snap).
    def _check_fast_accumulators(self, medium) -> None:
        for radio in medium._radios:
            watts = radio._incident_watts
            if watts < 0.0:
                self._fail("fast-accumulator-nonnegative", radio.name,
                           f"_incident_watts={watts!r}")
            if not radio._arrivals and watts != 0.0:
                self._fail("fast-accumulator-zero-snap", radio.name,
                           f"_incident_watts={watts!r} with no arrivals")

    # Routing: once quiescent, following next hops from any node toward
    # any destination must terminate (no forwarding loops).
    def _check_loop_free(self, nodes) -> None:
        now = self.sim.now
        by_address = {node.address: node for node in nodes}
        for node in nodes:
            routes = node.protocol.routes()
            if any(now - entry.updated_at < self.route_settle
                   for entry in routes.values()):
                return   # still converging: transient loops are legal
        for node in nodes:
            for destination in node.protocol.routes():
                hops = 0
                current = node
                while current is not None and current.address != destination:
                    nxt = current.protocol.next_hop(destination)
                    if nxt is None:
                        break   # route withdrawn/broken: fine
                    hops += 1
                    if hops > len(nodes):
                        self._fail(
                            "routing-loop-free",
                            f"{node.address}->{destination}",
                            f"next-hop chain exceeds {len(nodes)} hops")
                        break
                    current = by_address.get(nxt)
