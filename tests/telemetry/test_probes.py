"""Probe layer: the instrumented kernel loop, the medium transmit wrap,
fleet gauges, downtime spans, and the Telemetry hub's null path."""

import pytest

from repro.core.engine import Simulator, Timer
from repro.core.topology import Position
from repro.core.trace import TraceLog
from repro.faults import FaultLog
from repro.faults.schedule import FaultRecord
from repro.mac.addresses import allocate_address, reset_allocator
from repro.mac.dcf import DcfConfig, DcfMac
from repro.mac.rate_adapt import fixed_rate_factory
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.probes import (KernelDispatchProbe, Telemetry,
                                    record_fault_spans)
from repro.telemetry.spans import SpanLog


def _saturated_pair(seed=7, telemetry=True, interval=0.01):
    """Two senders to one receiver, instrumented end to end."""
    sim = Simulator(seed=seed, trace=TraceLog(enabled=False))
    medium = Medium(sim, FixedLoss(50.0))
    config = DcfConfig()
    factory = fixed_rate_factory("CCK-11")
    rx_radio = Radio("rx", medium, DOT11B, Position(0, 0, 0))
    receiver = DcfMac(sim, rx_radio, allocate_address(), config=config,
                      rate_factory=factory)
    macs = [receiver]
    for index in range(2):
        radio = Radio(f"tx{index}", medium, DOT11B,
                      Position(1.0 + index * 0.1, 0, 0))
        mac = DcfMac(sim, radio, allocate_address(), config=config,
                     rate_factory=factory)
        macs.append(mac)
    hub = Telemetry(sim, enabled=telemetry, sample_interval=interval)
    hub.instrument_kernel()
    hub.instrument_medium(medium)
    hub.instrument_macs(macs)
    hub.instrument_radios(medium._radios)
    hub.install()
    payload = bytes(200)
    for mac in macs[1:]:
        for _ in range(3):
            mac.send(receiver.address, payload)
    return sim, medium, macs, hub


class TestKernelDispatchProbe:
    def test_counts_by_entry_shape_with_identical_outcome(self):
        def _run(instrumented):
            sim = Simulator(seed=3)
            probe = None
            if instrumented:
                probe = KernelDispatchProbe(sim, MetricsRegistry())
                probe.install()
            fired = []
            sim.schedule_fast_at(0.1, lambda: fired.append("fast"))
            handle = sim.schedule_at(0.3, lambda: fired.append("cancelled"))
            handle.cancel()
            timer = Timer(sim, lambda: fired.append("timer"))
            timer.schedule_at(0.2)
            timer.schedule_at(0.25)  # supersede: one lazy timer drop
            sim.run(until=1.0)
            return sim, probe, fired

        plain_sim, _none, plain_fired = _run(instrumented=False)
        sim, probe, fired = _run(instrumented=True)
        assert fired == plain_fired == ["fast", "timer"]
        assert sim._now == plain_sim._now
        assert sim._events_executed == plain_sim._events_executed
        assert probe.dispatch_fast.value == 1
        assert probe.dispatch_timer.value == 1
        assert probe.drops_timer.value == 1
        assert probe.drops_handle.value == 1

    def test_uninstall_restores_class_method(self):
        sim = Simulator(seed=3)
        probe = KernelDispatchProbe(sim, MetricsRegistry()).install()
        assert "run" in sim.__dict__
        probe.uninstall()
        assert "run" not in sim.__dict__

    def test_disabled_registry_never_installs(self):
        sim = Simulator(seed=3)
        KernelDispatchProbe(sim, MetricsRegistry(enabled=False)).install()
        assert "run" not in sim.__dict__


class TestInstrumentedRun:
    def test_medium_probe_counts_frames_and_fanout(self):
        sim, medium, macs, hub = _saturated_pair()
        sim.run(until=0.2)
        hub.finish()
        frames = hub.registry.get("medium", "frames", channel=1)
        airtime = hub.registry.get("medium", "airtime_seconds", channel=1)
        assert frames.value > 0
        assert airtime.value > 0.0
        fanout = hub.registry.get("medium", "fanout_width")
        assert fanout.total == frames.value
        # 3 radios on the channel: every transmit reaches the other 2.
        assert fanout.mean == pytest.approx(2.0)

    def test_finish_restores_wrapped_methods(self):
        sim, medium, macs, hub = _saturated_pair()
        sim.run(until=0.05)
        assert "transmit" in medium.__dict__
        hub.finish()
        assert "transmit" not in medium.__dict__
        assert all(mac._frame_probe is None for mac in macs)

    def test_fleet_gauges_sample_series(self):
        sim, medium, macs, hub = _saturated_pair()
        sim.run(until=0.2)
        hub.finish()
        for subsystem, name in (("mac", "queue_depth_total"),
                                ("mac", "retry_timeouts"),
                                ("kernel", "heap_depth"),
                                ("phy", "arrivals_incident")):
            keys = [key for key in hub.registry.series_keys()
                    if key[:2] == (subsystem, name)]
            assert keys, f"no series for {subsystem}/{name}"
            assert hub.registry.series(keys[0])

    def test_protocol_outcomes_unchanged_by_instrumentation(self):
        def _deliveries(telemetry):
            reset_allocator()  # same addresses for both builds
            sim, medium, macs, hub = _saturated_pair(telemetry=telemetry)
            sim.run(until=0.2)
            hub.finish()
            return [(str(mac.address), dict(mac.counters.as_dict()))
                    for mac in macs]

        assert _deliveries(telemetry=False) == _deliveries(telemetry=True)


class TestNullHub:
    def test_disabled_hub_is_inert(self):
        sim, medium, macs, hub = _saturated_pair(telemetry=False)
        assert len(hub.registry) == 0
        assert not hub.sampler.installed
        assert "transmit" not in medium.__dict__
        assert "run" not in sim.__dict__
        assert all(mac._frame_probe is None for mac in macs)
        before = sim._scheduled
        sim.run(until=0.05)
        hub.finish()
        # No sampler events were ever injected.
        assert all(entry[2] is not None or entry[3].__name__ != "_sample"
                   for entry in sim._heap)
        assert len(hub.spans) == 0

    def test_finish_is_idempotent(self):
        sim, medium, macs, hub = _saturated_pair()
        sim.run(until=0.05)
        hub.finish()
        spans_after_first = len(hub.spans)
        hub.finish()
        assert len(hub.spans) == spans_after_first


class TestFaultSpans:
    def test_crash_restart_pairs_become_downtime_spans(self):
        log = FaultLog()
        log.append(FaultRecord(1.0, "crash", "ap0"))
        log.append(FaultRecord(3.0, "restart", "ap0"))
        log.append(FaultRecord(5.0, "crash", "ap1"))
        spans = SpanLog()
        assert record_fault_spans(log, spans, horizon=8.0) == 2
        restored = spans.select(outcome="restored")
        assert [(s.subject, s.start, s.end) for s in restored] \
            == [("ap0", 1.0, 3.0)]
        still_down = spans.select(outcome="open")
        assert [(s.subject, s.start, s.end) for s in still_down] \
            == [("ap1", 5.0, 8.0)]

    def test_span_mask_short_circuits(self):
        log = FaultLog()
        log.append(FaultRecord(1.0, "crash", "ap0"))
        spans = SpanLog()
        spans.enable_only("frame")
        assert record_fault_spans(log, spans, horizon=2.0) == 0
        assert len(spans) == 0
