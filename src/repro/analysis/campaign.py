"""Seed-ensemble and sweep analysis over campaign result stores.

Consumes the row dicts produced by :mod:`repro.campaign` (read back
with :func:`repro.campaign.read_store`) and turns per-seed samples into
the two shapes papers report:

* mean / 95%-CI ensemble tables per sweep point
  (:func:`ensemble_table`, :func:`render_ensemble_table`),
* sweep curves — one axis on x, mean±CI of one statistic on y
  (:func:`sweep_curve`, :func:`render_sweep_curve`) — the
  generalisation of ``duty_cycle_sweep`` to arbitrary spec axes,
* exact-vs-fast differential gates (:func:`compare_stats`,
  :func:`differential_gate`): match two stores job-by-job and check
  every statistic against per-stat tolerances.

Pure data-in/data-out, stdlib only: the t critical values for small
ensembles are a built-in table (95% two-sided, the textbook column), so
no SciPy dependency sneaks in.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .tables import render_table

__all__ = [
    "EnsembleStat",
    "Mismatch",
    "compare_stats",
    "differential_gate",
    "ensemble",
    "ensemble_table",
    "group_rows",
    "render_ensemble_table",
    "render_sweep_curve",
    "sweep_curve",
    "t_critical",
]

#: Two-sided 95% Student-t critical values by degrees of freedom.
#: Beyond the table the normal approximation (1.960) is within 0.5%.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_critical(df: int) -> float:
    """95% two-sided Student-t critical value for ``df`` degrees of
    freedom (normal approximation past df=30)."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    return _T_95.get(df, 1.960)


@dataclass(frozen=True)
class EnsembleStat:
    """Mean and spread of one statistic across a seed ensemble."""

    n: int
    mean: float
    std: float
    #: Half-width of the 95% confidence interval on the mean
    #: (``t * std / sqrt(n)``; 0 for a single sample).
    ci95: float

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95


def ensemble(values: Sequence[float]) -> EnsembleStat:
    """Mean / sample-std / 95% CI half-width of one sample set."""
    if not values:
        raise ValueError("cannot summarise an empty ensemble")
    n = len(values)
    mean = statistics.fmean(values)
    if n == 1:
        return EnsembleStat(n=1, mean=mean, std=0.0, ci95=0.0)
    std = statistics.stdev(values)
    return EnsembleStat(n=n, mean=mean, std=std,
                        ci95=t_critical(n - 1) * std / math.sqrt(n))


def _axes_key(axes: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(axes.items()))


def _group_label(key: Tuple[Tuple[str, Any], ...]) -> str:
    if not key:
        return "(all)"
    return "/".join(f"{path.rsplit('.', 1)[-1]}={value}"
                    for path, value in key)


def _done(rows: Sequence[Mapping[str, Any]]) -> List[Mapping[str, Any]]:
    return [row for row in rows if row.get("status") == "done"]


def group_rows(rows: Sequence[Mapping[str, Any]]
               ) -> Dict[Tuple[Tuple[str, Any], ...],
                         List[Mapping[str, Any]]]:
    """Group done rows by their sweep axes (the seed ensemble per sweep
    point), preserving first-appearance order — i.e. grid order when
    the rows come straight from a store."""
    groups: Dict[Tuple[Tuple[str, Any], ...],
                 List[Mapping[str, Any]]] = {}
    for row in _done(rows):
        groups.setdefault(_axes_key(row.get("axes", {})), []).append(row)
    return groups


def _as_number(value: Any) -> Optional[float]:
    """Numeric value of one stat cell, or None.

    The canonical store renders floats via ``repr`` (byte-compare
    callers must never see them re-rounded), so rows read back with
    :func:`repro.campaign.read_store` carry them as strings — revive
    those here; anything genuinely non-numeric stays out.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


def _numeric_stats(row: Mapping[str, Any]) -> Dict[str, float]:
    out = {}
    for key, value in row.get("stats", {}).items():
        number = _as_number(value)
        if number is not None:
            out[key] = number
    return out


def ensemble_table(rows: Sequence[Mapping[str, Any]],
                   stats: Optional[Sequence[str]] = None
                   ) -> List[Tuple[str, Dict[str, EnsembleStat]]]:
    """Per-sweep-point seed-ensemble summaries.

    Returns ``[(group_label, {stat_name: EnsembleStat})]`` in grid
    order.  ``stats`` selects which statistics to summarise; default is
    every numeric statistic present in all rows of the group.
    """
    table = []
    for key, group in group_rows(rows).items():
        samples: Dict[str, List[float]] = {}
        for row in group:
            for name, value in _numeric_stats(row).items():
                samples.setdefault(name, []).append(float(value))
        wanted = list(stats) if stats is not None else sorted(
            name for name, values in samples.items()
            if len(values) == len(group))
        summary = {}
        for name in wanted:
            values = samples.get(name)
            if not values:
                raise KeyError(f"statistic {name!r} missing from group "
                               f"{_group_label(key)!r}")
            summary[name] = ensemble(values)
        table.append((_group_label(key), summary))
    return table


def render_ensemble_table(title: str,
                          rows: Sequence[Mapping[str, Any]],
                          stats: Sequence[str]) -> str:
    """Boxed mean±CI table: one row per sweep point, ``n`` seeds."""
    table = ensemble_table(rows, stats=stats)
    headers = ["sweep point", "n"]
    for name in stats:
        headers.extend([f"{name} mean", "ci95"])
    out_rows = []
    for label, summary in table:
        n = max((stat.n for stat in summary.values()), default=0)
        row: List[Any] = [label, n]
        for name in stats:
            row.extend([summary[name].mean, summary[name].ci95])
        out_rows.append(row)
    formats: List[Optional[str]] = [None, "d"]
    formats.extend([".4g", ".2g"] * len(stats))
    return render_table(title, headers, out_rows, formats=formats)


def sweep_curve(rows: Sequence[Mapping[str, Any]], axis: str, stat: str
                ) -> List[Tuple[Any, EnsembleStat]]:
    """One sweep curve: ``(axis value, EnsembleStat of stat)`` per
    point, in grid order.

    ``axis`` is the spec path swept (e.g.
    ``"adversaries.0.params.on_time"``); every done row must carry it
    in its ``axes``.  The generalisation of
    :func:`~repro.analysis.adversary.duty_cycle_sweep`: the runs
    already happened, the curve falls out of the store.
    """
    curve: List[Tuple[Any, EnsembleStat]] = []
    buckets: Dict[Any, List[float]] = {}
    order: List[Any] = []
    for row in _done(rows):
        axes = row.get("axes", {})
        if axis not in axes:
            raise KeyError(f"row {row.get('label')!r} has no sweep axis "
                           f"{axis!r} (axes: {sorted(axes)})")
        value = axes[axis]
        stats_row = _numeric_stats(row)
        if stat not in stats_row:
            raise KeyError(f"row {row.get('label')!r} has no statistic "
                           f"{stat!r}")
        if value not in buckets:
            buckets[value] = []
            order.append(value)
        buckets[value].append(stats_row[stat])
    for value in order:
        curve.append((value, ensemble(buckets[value])))
    return curve


def render_sweep_curve(title: str, rows: Sequence[Mapping[str, Any]],
                       axis: str, stat: str) -> str:
    """The sweep curve as a four-column series table."""
    points = sweep_curve(rows, axis, stat)
    axis_label = axis.rsplit(".", 1)[-1]
    return render_table(
        title, [axis_label, "n", f"{stat} mean", "ci95"],
        [[value, point.n, point.mean, point.ci95]
         for value, point in points],
        formats=[None, "d", ".4g", ".2g"])


@dataclass(frozen=True)
class Mismatch:
    """One statistic that fell outside its differential tolerance."""

    label: str
    stat: str
    reference: float
    candidate: float
    limit: float

    @property
    def delta(self) -> float:
        return abs(self.candidate - self.reference)

    def __str__(self) -> str:
        return (f"{self.label}: {self.stat}: |{self.candidate!r} - "
                f"{self.reference!r}| = {self.delta:g} > {self.limit:g}")


def _limit(tolerance: Any, reference: float) -> float:
    """Allowed |delta| for one stat: a bare number is absolute; a dict
    may give ``abs`` and/or ``rel`` (of the reference magnitude)."""
    if isinstance(tolerance, (int, float)):
        return float(tolerance)
    allowed = float(tolerance.get("abs", 0.0))
    allowed += float(tolerance.get("rel", 0.0)) * abs(reference)
    return allowed


def compare_stats(reference_rows: Sequence[Mapping[str, Any]],
                  candidate_rows: Sequence[Mapping[str, Any]],
                  tolerances: Mapping[str, Any]) -> List[Mismatch]:
    """Match two stores job-by-job; return every tolerance violation.

    Rows are matched by ``(axes, seed)`` — the job identity minus the
    execution mode, which is exactly what differs between an exact and
    a fast campaign built from the same spec.  Only statistics named in
    ``tolerances`` are compared; a statistic missing from either side,
    or an unmatched job, is itself a mismatch (silent shrinkage must
    not pass the gate).
    """
    def identity(row: Mapping[str, Any]) -> Tuple[Any, ...]:
        return (_axes_key(row.get("axes", {})), row.get("seed"))

    candidates = {identity(row): row for row in _done(candidate_rows)}
    mismatches: List[Mismatch] = []
    reference_done = _done(reference_rows)
    if len(candidates) != len(reference_done):
        mismatches.append(Mismatch(
            label="(store)", stat="done row count",
            reference=float(len(reference_done)),
            candidate=float(len(candidates)), limit=0.0))
    for row in reference_done:
        other = candidates.get(identity(row))
        label = row.get("label", "?")
        if other is None:
            mismatches.append(Mismatch(label=label, stat="(row missing)",
                                       reference=1.0, candidate=0.0,
                                       limit=0.0))
            continue
        ref_stats = _numeric_stats(row)
        cand_stats = _numeric_stats(other)
        for stat, tolerance in sorted(tolerances.items()):
            if stat not in ref_stats or stat not in cand_stats:
                mismatches.append(Mismatch(
                    label=label, stat=f"{stat} (absent)",
                    reference=float(stat in ref_stats),
                    candidate=float(stat in cand_stats), limit=0.0))
                continue
            reference = ref_stats[stat]
            candidate = cand_stats[stat]
            limit = _limit(tolerance, reference)
            if abs(candidate - reference) > limit:
                mismatches.append(Mismatch(
                    label=label, stat=stat, reference=reference,
                    candidate=candidate, limit=limit))
    return mismatches


def differential_gate(reference_rows: Sequence[Mapping[str, Any]],
                      candidate_rows: Sequence[Mapping[str, Any]],
                      tolerances: Mapping[str, Any]) -> None:
    """Raise ``AssertionError`` listing every violation, or pass
    silently — the CI-facing face of :func:`compare_stats`."""
    mismatches = compare_stats(reference_rows, candidate_rows, tolerances)
    if mismatches:
        details = "\n  ".join(str(mismatch) for mismatch in mismatches)
        raise AssertionError(
            f"differential gate failed ({len(mismatches)} violation(s)):"
            f"\n  {details}")
