"""Tests for modulation BER curves."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.phy.modulation import (
    CCK_11,
    DBPSK_DSSS,
    Modulation,
    OFDM_16QAM_12,
    OFDM_64QAM_34,
    OFDM_BPSK_12,
    OFDM_QPSK_12,
    q_function,
)


class TestQFunction:
    def test_known_values(self):
        assert q_function(0.0) == pytest.approx(0.5)
        assert q_function(1.0) == pytest.approx(0.1587, abs=1e-3)
        assert q_function(3.0) == pytest.approx(1.35e-3, rel=0.05)

    def test_symmetry(self):
        assert q_function(-1.5) == pytest.approx(1.0 - q_function(1.5))

    @given(st.floats(min_value=-10, max_value=10))
    def test_bounds(self, x):
        assert 0.0 <= q_function(x) <= 1.0


class TestBerCurves:
    @pytest.mark.parametrize("modulation", [
        DBPSK_DSSS, CCK_11, OFDM_BPSK_12, OFDM_QPSK_12,
        OFDM_16QAM_12, OFDM_64QAM_34,
    ])
    def test_ber_decreases_with_snr(self, modulation):
        bers = [modulation.ber(snr) for snr in range(-10, 40, 2)]
        for earlier, later in zip(bers, bers[1:]):
            assert later <= earlier + 1e-15

    @pytest.mark.parametrize("modulation", [
        DBPSK_DSSS, OFDM_BPSK_12, OFDM_64QAM_34,
    ])
    def test_ber_in_unit_interval(self, modulation):
        for snr in (-20.0, 0.0, 15.0, 50.0):
            assert 0.0 <= modulation.ber(snr) <= 0.5 + 1e-12

    def test_higher_order_needs_more_snr(self):
        # At a fixed moderate SNR, denser constellations err more.
        snr = 12.0
        assert OFDM_BPSK_12.ber(snr) <= OFDM_QPSK_12.ber(snr) * 1.5
        assert OFDM_QPSK_12.ber(snr) < OFDM_16QAM_12.ber(snr)
        assert OFDM_16QAM_12.ber(snr) < OFDM_64QAM_34.ber(snr)

    def test_spreading_gain_helps(self):
        unspread = Modulation("plain BPSK", 1.0)
        assert DBPSK_DSSS.ber(0.0) < unspread.ber(0.0)

    def test_high_snr_is_effectively_error_free(self):
        assert OFDM_64QAM_34.ber(40.0) < 1e-12

    def test_zero_efficiency_rejected(self):
        broken = Modulation("broken", 0.0)
        with pytest.raises(ValueError):
            broken.ber(10.0)
