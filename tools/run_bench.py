#!/usr/bin/env python3
"""Performance harness runner: times the macro-scenarios and emits
``BENCH_<name>.json`` so every PR has a perf trajectory to beat.

Usage::

    # Full run: median-of-5, writes BENCH_*.json to the repo root.
    PYTHONPATH=src python tools/run_bench.py

    # Subset / tuning: --only filters by exact name or glob pattern, so
    # a heavyweight macro (interference_field and its fast twin) can be
    # iterated on without re-running the full suite:
    PYTHONPATH=src python tools/run_bench.py --only dcf_saturation --repeat 7
    PYTHONPATH=src python tools/run_bench.py --only 'interference_field*'

    # Embed a cProfile top-10 (cumulative) per scenario in the BENCH
    # JSON, from one extra untimed run, so perf PRs can cite where the
    # remaining time goes.  The full profile additionally lands in a
    # standalone BENCH_<name>.profile.txt sidecar next to the JSON:
    PYTHONPATH=src python tools/run_bench.py --profile

    # Run with the telemetry subsystem armed: each scenario gets the
    # repro.telemetry probes/sampler and the BENCH record gains a
    # "telemetry" summary key (informational — the regression gate
    # never reads it).  Mutually exclusive with --check, which must
    # measure the production posture:
    PYTHONPATH=src python tools/run_bench.py --telemetry

    # CI regression gate: reduced scale, compares work/sec against the
    # committed baseline, exits non-zero on a >25% regression.
    PYTHONPATH=src python tools/run_bench.py --check

    # Refresh the committed baseline on the current machine:
    PYTHONPATH=src python tools/run_bench.py --check --update-baseline

Output format (one JSON file per scenario)::

    {
      "name": "dcf_saturation",
      "scale": 1.0,
      "repeats": 5,
      "wall_s": 0.81,            # median of repeats
      "work": 204888,
      "work_unit": "events",
      "work_per_sec": 252948.0,
      "stats": {...}             # seed-deterministic outcome fingerprint
    }

``stats`` must be identical run-to-run for the same seed (that is the
determinism contract the perf tests assert); ``wall_s``/``work_per_sec``
are machine-dependent.  GC is disabled around the timed region to cut
run-to-run variance; the workload's own allocations dominate either way.
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import json
import os
import pathlib
import platform
import pstats
import statistics
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "perf" / "baseline.json"
#: A run this much slower than baseline (in work/sec) fails --check.
REGRESSION_TOLERANCE = 0.25
#: Reduced scale used by --check so the CI gate stays fast.
CHECK_SCALE = 0.25

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from perf.macro import MACROS  # noqa: E402
from repro.campaign.pool import call_guarded, iter_pooled, \
    select_names  # noqa: E402
from repro.core.engine import KERNELS, resolve_kernel  # noqa: E402


def profile_scenario(name: str, scale: float, top: int = 10,
                     sidecar: Optional[pathlib.Path] = None,
                     telemetry: bool = False) -> List[Dict[str, Any]]:
    """cProfile one extra (untimed) run; return the ``top`` functions by
    cumulative time.

    Embedded in the BENCH record so a perf PR can cite *where* the time
    went, not just how much of it there was.  The profiled run is
    separate from the timed repeats — profiling overhead (3-4x on this
    workload) must never pollute the wall figures.  With ``sidecar``,
    the *full* cumulative profile is additionally written to that path
    (a standalone text file, not part of the BENCH JSON).
    """
    scenario = MACROS[name]
    profiler = cProfile.Profile()
    profiler.enable()
    scenario(scale, telemetry=True) if telemetry else scenario(scale)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    if sidecar is not None:
        import io
        buffer = io.StringIO()
        pstats.Stats(profiler, stream=buffer) \
            .sort_stats("cumulative").print_stats()
        sidecar.write_text(buffer.getvalue())
    rows: List[Dict[str, Any]] = []
    repo_prefix = str(REPO_ROOT) + "/"
    for func in stats.fcn_list[:top]:  # (file, line, name), sorted
        cc, ncalls, tottime, cumtime, _callers = stats.stats[func]
        filename, line, func_name = func
        rows.append({
            "function": f"{filename.replace(repo_prefix, '')}:{line}"
                        f"({func_name})",
            "calls": ncalls,
            "tottime_s": round(tottime, 4),
            "cumtime_s": round(cumtime, 4),
        })
    return rows


def time_scenario(name: str, scale: float, repeats: int,
                  profile: bool = False, telemetry: bool = False,
                  profile_dir: Optional[pathlib.Path] = None
                  ) -> Dict[str, Any]:
    """Run one macro-scenario ``repeats`` times; return its bench record."""
    scenario = MACROS[name]
    walls = []
    result: Dict[str, Any] = {}
    first_stats: Optional[Dict[str, Any]] = None
    kwargs = {"telemetry": True} if telemetry else {}
    for _ in range(repeats):
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = scenario(scale, **kwargs)
            walls.append(time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
        if first_stats is None:
            first_stats = result["stats"]
        elif result["stats"] != first_stats:
            raise AssertionError(
                f"{name}: non-deterministic stats across repeats: "
                f"{first_stats} vs {result['stats']}")
    wall = statistics.median(walls)
    record = {
        "name": name,
        "scale": scale,
        "repeats": repeats,
        # The concrete run-loop implementation ("python" or "c") the
        # scenario's simulators resolved to — throughput is only
        # comparable like-for-like, so every record carries it.
        "kernel": resolve_kernel(),
        "wall_s": round(wall, 4),
        "work": result["work"],
        "work_unit": result["work_unit"],
        "work_per_sec": round(result["work"] / wall, 1),
        # Best-of-k throughput: the regression gate compares this, not
        # the median — a loaded machine can halve a median, but it can
        # only ever *lower* the best, so best-vs-best is the stabler
        # "did the code get slower" signal.
        "work_per_sec_best": round(result["work"] / min(walls), 1),
        "stats": result["stats"],
    }
    if telemetry:
        # Informational only: the regression gate and the BENCH
        # trajectory comparisons never read this key.
        record["telemetry"] = result.get("telemetry_summary")
    if profile:
        sidecar = (profile_dir / f"BENCH_{name}.profile.txt"
                   if profile_dir is not None else None)
        record["profile_top10_cumulative"] = profile_scenario(
            name, scale, sidecar=sidecar, telemetry=telemetry)
    return record


def _scenario_task(name: str, scale: float, repeats: int, profile: bool,
                   telemetry: bool,
                   profile_dir: Optional[pathlib.Path]):
    """One scenario measurement as a zero-arg task for the shared pool."""
    return lambda: time_scenario(name, scale, repeats, profile=profile,
                                 telemetry=telemetry,
                                 profile_dir=profile_dir)


def time_scenario_guarded(name: str, scale: float, repeats: int,
                          profile: bool = False, timeout: float = 0.0,
                          telemetry: bool = False,
                          profile_dir: Optional[pathlib.Path] = None
                          ) -> Tuple[str, Any]:
    """``time_scenario`` with an optional wall-clock cap.

    With ``timeout`` <= 0, runs in-process exactly as before.  With a
    timeout, the scenario runs in a forked child (fork: the child
    shares this process's loaded MACROS, monkeypatches included) and a
    scenario that livelocks or blows its budget is killed — yielding a
    clean ``("timeout", None)`` instead of hanging the whole bench run.

    Returns ``(status, payload)``: ``("ok", record)``,
    ``("error", message)`` or ``("timeout", None)``.  The fork/timeout
    machinery itself lives in :mod:`repro.campaign.pool`, shared with
    ``tools/run_campaign.py``.
    """
    return call_guarded(_scenario_task(name, scale, repeats, profile,
                                       telemetry, profile_dir),
                        timeout=timeout)


def iter_results(names, scale: float, repeats: int, profile: bool = False,
                 timeout: float = 0.0, jobs: int = 1,
                 telemetry: bool = False,
                 profile_dir: Optional[pathlib.Path] = None):
    """Yield ``(name, status, payload)`` for every scenario, **in input
    order** regardless of completion order.

    ``jobs <= 1`` preserves the historical serial path byte-for-byte
    (including the in-process no-timeout mode).  With ``jobs > 1``
    every scenario runs in its own forked child — the same isolation
    ``--timeout`` already buys — with at most ``jobs`` children alive at
    once; finished results are buffered until their turn so the output
    rows (and failure ordering) are pinned to the input list (the
    shared :func:`repro.campaign.pool.iter_pooled` contract).
    """
    order = list(names)
    tasks = [_scenario_task(name, scale, repeats, profile, telemetry,
                            profile_dir) for name in order]
    for index, status, payload in iter_pooled(tasks, timeout=timeout,
                                              jobs=jobs):
        yield order[index], status, payload


def write_bench_json(record: Dict[str, Any], out_dir: pathlib.Path) -> pathlib.Path:
    path = out_dir / f"BENCH_{record['name']}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def run_full(names, scale: float, repeats: int, out_dir: pathlib.Path,
             profile: bool = False, timeout: float = 0.0,
             jobs: int = 1, telemetry: bool = False) -> int:
    failures = []
    for name, status, payload in iter_results(names, scale, repeats,
                                              profile=profile,
                                              timeout=timeout, jobs=jobs,
                                              telemetry=telemetry,
                                              profile_dir=out_dir
                                              if profile else None):
        if status != "ok":
            reason = f"timed out after {timeout:g}s" \
                if status == "timeout" else payload
            print(f"{name:20s} FAILED: {reason}")
            failures.append(name)
            continue
        record = payload
        path = write_bench_json(record, out_dir)
        print(f"{name:20s} {record['wall_s']:8.3f}s "
              f"{record['work_per_sec']:>12,.0f} {record['work_unit']}/s"
              f"   -> {path.name}")
    if failures:
        print(f"FAIL: scenario(s) did not complete: {sorted(failures)}")
        return 1
    return 0


def _machine_fingerprint() -> str:
    return f"{platform.node()}/{platform.machine()}/py{platform.python_version()}"


def run_check(names, repeats: int, update_baseline: bool,
              timeout: float = 0.0, jobs: int = 1) -> int:
    """Reduced-scale regression gate against the committed baseline.

    Throughput (work/sec) is only compared when the baseline was
    recorded on this machine — absolute events/sec from another host
    would gate the hardware, not the diff — AND with the same kernel:
    a python-kernel baseline must not regression-gate a C-kernel run
    (or vice versa); that would gate the kernel choice, not the diff.
    The seeded ``stats`` fingerprint is machine- and kernel-independent
    (the kernels are bit-identical) and is always compared.
    """
    baseline: Dict[str, Any] = {}
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
    machine = _machine_fingerprint()
    baseline_machine = baseline.get("_machine")
    same_machine = baseline_machine == machine
    if baseline and not same_machine and not update_baseline:
        print(f"note: baseline recorded on {baseline_machine!r}, this is "
              f"{machine!r} — throughput gate skipped, determinism (stats) "
              f"still checked. Run --check --update-baseline here to arm "
              f"the throughput gate for this machine.")
    failures = []
    records = {}
    for name, status, payload in iter_results(names, CHECK_SCALE, repeats,
                                              timeout=timeout, jobs=jobs):
        if status != "ok":
            reason = f"timed out after {timeout:g}s" \
                if status == "timeout" else payload
            print(f"{name:20s} FAILED: {reason}")
            failures.append(name)
            continue
        record = payload
        records[name] = record
        reference = baseline.get(name)
        if reference is None:
            print(f"{name:20s} {record['work_per_sec']:>12,.0f} "
                  f"{record['work_unit']}/s   (no baseline)")
            continue
        # Baselines predating the kernel key were recorded with the
        # pure-Python loop (the only kernel that existed then).
        same_kernel = (reference.get("kernel", "python")
                       == record["kernel"])
        if same_machine and same_kernel:
            floor = reference["work_per_sec"] * (1.0 - REGRESSION_TOLERANCE)
            best = record["work_per_sec_best"]
            verdict = "ok" if best >= floor else "REGRESSED"
            print(f"{name:20s} {best:>12,.0f} "
                  f"{record['work_unit']}/s (best)   baseline "
                  f"{reference['work_per_sec']:>12,.0f}   {verdict}")
            if best < floor:
                failures.append(name)
        elif same_machine:
            print(f"{name:20s} {record['work_per_sec']:>12,.0f} "
                  f"{record['work_unit']}/s   (kernel "
                  f"{record['kernel']!r} vs baseline "
                  f"{reference.get('kernel', 'python')!r}: not gated)")
        else:
            print(f"{name:20s} {record['work_per_sec']:>12,.0f} "
                  f"{record['work_unit']}/s   (cross-machine: not gated)")
        if record["stats"] != reference.get("stats", record["stats"]):
            print(f"{name:20s} DETERMINISM DRIFT: stats differ from the "
                  f"committed baseline — a behavior change, not just a "
                  f"perf change. Update the baseline deliberately.")
            failures.append(name)
    if update_baseline:
        # Merge into the existing baseline: refreshing a subset via
        # --only must not erase the other scenarios' entries (which
        # would silently disarm their regression/determinism gates).
        # Entries for scenarios that no longer exist in MACROS are
        # pruned so renames/removals don't fossilize stale gates.
        payload: Dict[str, Any] = {
            name: entry for name, entry in baseline.items()
            if not name.startswith("_") and name in MACROS}
        payload.update({
            name: {
                "work_per_sec": record["work_per_sec_best"],
                "work_unit": record["work_unit"],
                "scale": record["scale"],
                "kernel": record["kernel"],
                "stats": record["stats"],
            }
            for name, record in records.items()
        })
        payload["_machine"] = machine
        BASELINE_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated -> {BASELINE_PATH}")
        return 0
    if failures:
        print(f"FAIL: regression(s) in {sorted(set(failures))}")
        return 1
    print("all benchmarks within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--list", action="store_true",
                        help="list the registered macro-scenarios and exit")
    parser.add_argument("--only", action="append", metavar="NAME",
                        help="run only this scenario (repeatable; accepts "
                             "glob patterns, e.g. 'interference_field*')")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--repeat", type=int, default=5,
                        help="repetitions per scenario; median wall time "
                             "is reported (default 5)")
    parser.add_argument("--out-dir", type=pathlib.Path, default=REPO_ROOT,
                        help="where BENCH_*.json files go (default: repo root)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile one extra (untimed) run per scenario; "
                             "embeds the top-10 cumulative functions in the "
                             "emitted BENCH_*.json and writes the full "
                             "profile to a BENCH_<name>.profile.txt sidecar")
    parser.add_argument("--telemetry", action="store_true",
                        help="arm the repro.telemetry probes/sampler for "
                             "every scenario and embed the telemetry summary "
                             "under the (non-gated) 'telemetry' BENCH key; "
                             "incompatible with --check")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run up to N scenarios concurrently, each in "
                             "its own forked worker (the --timeout "
                             "isolation); output rows stay in input order "
                             "regardless of completion order (default 1 = "
                             "the historical serial path)")
    parser.add_argument("--timeout", type=float, default=0.0,
                        metavar="SECONDS",
                        help="per-scenario wall-clock budget; a scenario "
                             "exceeding it is killed and reported as a "
                             "FAILED row instead of hanging the run "
                             "(default 0 = unlimited, in-process)")
    parser.add_argument("--kernel", choices=KERNELS, default=None,
                        metavar="{auto,python,c}",
                        help="run-loop implementation for every scenario "
                             "(exported as REPRO_KERNEL so forked workers "
                             "inherit it); 'c' errors out if the extension "
                             "is not built, 'auto' uses it when available "
                             "(default: honor the existing REPRO_KERNEL, "
                             "else auto)")
    parser.add_argument("--check", action="store_true",
                        help="reduced-scale regression gate vs the committed "
                             "baseline (exit 1 on >25%% regression; "
                             "throughput is gated like-for-like — same "
                             "machine AND same kernel as the baseline)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="with --check: rewrite the committed baseline "
                             "from this machine's numbers")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(MACROS):
            summary = (MACROS[name].__doc__ or "").strip().split("\n")[0]
            print(f"{name:20s} {summary}")
        return 0
    try:
        names = select_names(args.only, MACROS)
    except ValueError as exc:
        parser.error(str(exc))
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.kernel is not None:
        # Export rather than thread a parameter through: macro code
        # resolves the kernel per-Simulator from REPRO_KERNEL, and the
        # forked --timeout/--jobs workers inherit the environment.
        os.environ["REPRO_KERNEL"] = args.kernel
    try:
        resolve_kernel()  # fail fast: an unbuilt explicit 'c' must not
    except Exception as exc:  # produce a full run of FAILED rows
        parser.error(str(exc))
    if args.telemetry and args.check:
        parser.error("--telemetry is mutually exclusive with --check: the "
                     "regression gate must measure the production posture")
    if args.check:
        return run_check(names, max(args.repeat, 3), args.update_baseline,
                         timeout=args.timeout, jobs=args.jobs)
    return run_full(names, args.scale, args.repeat, args.out_dir,
                    profile=args.profile, timeout=args.timeout,
                    jobs=args.jobs, telemetry=args.telemetry)


if __name__ == "__main__":
    raise SystemExit(main())
