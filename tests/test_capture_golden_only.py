"""capture_golden's --only macro filter (run_bench --only contract)."""

import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import capture_golden  # noqa: E402


def _error(message):
    raise SystemExit(message)


class TestSelectMacros:
    def test_no_patterns_selects_everything(self):
        assert capture_golden.select_macros(None, _error) \
            == list(capture_golden.CAPTURABLE_MACROS)
        assert capture_golden.select_macros([], _error) \
            == list(capture_golden.CAPTURABLE_MACROS)

    def test_exact_name(self):
        assert capture_golden.select_macros(["multi_bss"], _error) \
            == ["multi_bss"]

    def test_glob_expands_in_declared_order(self):
        assert capture_golden.select_macros(["dcf_saturation*"], _error) \
            == ["dcf_saturation", "dcf_saturation_fast",
                "dcf_saturation_100", "dcf_saturation_100_fast"]

    def test_duplicates_collapse_but_order_follows_command_line(self):
        names = capture_golden.select_macros(
            ["wep_audit", "dcf_saturation_1*", "wep_audit"], _error)
        assert names == ["wep_audit", "dcf_saturation_100",
                         "dcf_saturation_100_fast"]

    def test_unmatched_pattern_is_an_error(self):
        with pytest.raises(SystemExit, match="no_such"):
            capture_golden.select_macros(["no_such*"], _error)

    def test_stats_only_macro_is_capturable(self):
        assert "wep_audit" in capture_golden.CAPTURABLE_MACROS
        assert "wep_audit" not in capture_golden.TRACED_MACROS
