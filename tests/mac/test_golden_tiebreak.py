"""Golden-trace regression test for backoff tie-break ordering.

The fixture was captured from the slot-by-slot countdown implementation
(pre-batching), on a topology engineered so stations share perfectly
aligned slot grids and repeatedly draw backoffs that expire in the
*same slot*.  The batched countdown must reproduce the entire protocol
event trace — including who wins each same-slot tie and which pairs
collide — byte for byte.

Regenerate deliberately with::

    PYTHONPATH=src:benchmarks:tests python tools/capture_golden.py --fixture

only from a commit whose contention behavior is the intended reference.
"""

import json
import pathlib

from golden_tiebreak import (SCENARIO_VERSION, run_tiebreak_scenario,
                             same_slot_transmissions)

FIXTURE_PATH = pathlib.Path(__file__).parent / "fixtures" / \
    "tiebreak_trace.json"


def _load_fixture():
    return json.loads(FIXTURE_PATH.read_text())


def test_fixture_matches_scenario_version():
    assert _load_fixture()["scenario_version"] == SCENARIO_VERSION, (
        "scenario changed without regenerating the fixture "
        "(tools/capture_golden.py --fixture)")


def test_fixture_contains_same_slot_ties():
    """The fixture is only meaningful if ties actually occur."""
    fixture = _load_fixture()
    assert fixture["same_slot_ties"] >= 1
    assert same_slot_transmissions(fixture["trace"]) == \
        fixture["same_slot_ties"]


def test_tiebreak_trace_is_byte_identical_to_golden():
    """Same seed -> the per-slot-era winner/collision sequence, exactly."""
    fixture = _load_fixture()
    lines, stats = run_tiebreak_scenario()
    assert stats == fixture["stats"]
    # Compare a line count first for a readable failure, then the
    # full byte-exact sequence.
    assert len(lines) == len(fixture["trace"])
    for index, (got, want) in enumerate(zip(lines, fixture["trace"])):
        assert got == want, (
            f"trace diverges at line {index}: {got!r} != {want!r}")


def test_same_slot_ties_reproduce():
    lines, _stats = run_tiebreak_scenario()
    assert same_slot_transmissions(lines) == \
        _load_fixture()["same_slot_ties"]
