"""Tests for trace-driven airtime accounting."""

import pytest

from repro.analysis.airtime import AirtimeReport
from repro.core import Position, Simulator
from repro.mac.addresses import allocate_address
from repro.mac.dcf import DcfMac
from repro.mac.rate_adapt import fixed_rate_factory
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio


def run_exchange(sim, frames=5):
    medium = Medium(sim, FixedLoss(50.0))
    tx_radio = Radio("alpha", medium, DOT11B, Position(0, 0, 0))
    rx_radio = Radio("beta", medium, DOT11B, Position(3, 0, 0))
    tx = DcfMac(sim, tx_radio, allocate_address(),
                rate_factory=fixed_rate_factory("CCK-11"))
    rx = DcfMac(sim, rx_radio, allocate_address(),
                rate_factory=fixed_rate_factory("CCK-11"))
    for index in range(frames):
        tx.send(rx.address, bytes(500))
    sim.run(until=1.0)
    return tx, rx


class TestAirtimeReport:
    def test_counts_frames_per_source(self, sim):
        run_exchange(sim, frames=5)
        report = AirtimeReport(sim.trace, DOT11B)
        assert report.sources["alpha"].frames == 5   # data
        assert report.sources["beta"].frames == 5    # ACKs

    def test_data_sender_dominates_airtime(self, sim):
        run_exchange(sim, frames=5)
        report = AirtimeReport(sim.trace, DOT11B)
        assert report.share_of("alpha") > report.share_of("beta")
        assert report.share_of("alpha") + report.share_of("beta") == \
            pytest.approx(1.0)

    def test_airtime_matches_formula(self, sim):
        run_exchange(sim, frames=1)
        report = AirtimeReport(sim.trace, DOT11B)
        mode = DOT11B.mode_for_rate(11e6)
        expected = DOT11B.frame_airtime((24 + 500 + 4) * 8, mode)
        assert report.sources["alpha"].airtime_s == pytest.approx(expected)

    def test_mode_breakdown(self, sim):
        run_exchange(sim, frames=3)
        report = AirtimeReport(sim.trace, DOT11B)
        # Data at CCK-11; ACKs at the 1 Mb/s basic rate.
        assert "CCK-11" in report.sources["alpha"].by_mode
        assert "DSSS-1" in report.sources["beta"].by_mode

    def test_busy_fraction_bounded_without_overlap(self, sim):
        run_exchange(sim, frames=5)
        report = AirtimeReport(sim.trace, DOT11B)
        assert 0.0 < report.busy_fraction <= 1.0

    def test_explicit_window(self, sim):
        run_exchange(sim, frames=2)
        report = AirtimeReport(sim.trace, DOT11B, window=1.0)
        assert report.window_s == 1.0
        assert report.busy_fraction < 0.1

    def test_render_contains_sources(self, sim):
        run_exchange(sim, frames=2)
        text = AirtimeReport(sim.trace, DOT11B).render("demo")
        assert "alpha" in text and "beta" in text
        assert "busy fraction" in text

    def test_empty_trace(self, sim):
        report = AirtimeReport(sim.trace, DOT11B)
        assert report.busy_fraction == 0.0
        assert report.share_of("nobody") == 0.0
