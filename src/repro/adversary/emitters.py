"""Non-decodable RF energy sources: jammers and coexistence interferers.

Every emitter here drives the medium's energy-only transmission path
(:meth:`~repro.phy.channel.Medium.transmit_energy`): its bursts carry
power but no frame, so co-channel radios integrate them into CCA and
interference accounting — in both exact and fast mode — without ever
locking onto them.  Emitters are *transmit-only* senders by default
(an :class:`EnergySource`, not an attached
:class:`~repro.phy.transceiver.Radio`), so the medium never fans frames
out **to** them: a field of twenty jammers adds zero per-frame receive
events beyond the victims' own.

The profiles:

* :class:`ConstantJammer` — barrage noise, back-to-back bursts.
* :class:`PeriodicJammer` — duty-cycled pulse jammer (on/period).
* :class:`SweepingJammer` — hops a channel list, dwelling per channel.
* :class:`ReactiveJammer` — carrier-senses with a real radio and stomps
  the tail of any transmission whose CCA edge it detects.
* :class:`BluetoothHopper` — coexistence bystander reusing the
  :mod:`repro.wpan.bluetooth` TDD slot timing: a 79-hop FHSS device
  whose hops land in the victim channel's passband a fixed fraction of
  the time.
* :class:`MicrowaveOven` — broadband mains-synchronous burst source
  splattering several channels at once.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.engine import Simulator, Timer
from ..core.errors import ConfigurationError
from ..core.stats import Counter
from ..core.topology import Position
from ..core.units import dbm_to_watts
from ..phy.channel import Medium
from ..phy.standards import PhyStandard, DOT11B
from ..phy.transceiver import Radio, RadioConfig, RadioState
from ..wpan.bluetooth import SLOT_TIME as BT_SLOT_TIME

#: Bluetooth hops its 1 MHz carrier over 79 channels; a 22 MHz DSSS
#: victim channel therefore swallows 22 of them (the classic 2.4 GHz
#: coexistence overlap fraction).
BT_HOP_CHANNELS = 79
BT_OVERLAP_CHANNELS = 22
#: TX portion of a single-slot Bluetooth packet (access code + header +
#: DH1 payload at 1 Mb/s), the rest of the 625 us slot is turnaround.
BT_TX_TIME = 366e-6


class EnergySource:
    """A minimal transmit-only sender for the medium's energy path.

    Exposes exactly the sender surface
    :meth:`~repro.phy.channel.Medium.transmit` needs — ``name``,
    ``position`` / ``_position``, ``_channel_id`` — without being an
    attached radio, so it never appears in any receiver list and adds
    no per-frame cost to the victims' traffic.  Moving invalidates its
    cached link budgets; retuning drops only its own compiled fan-out
    plan (:meth:`~repro.phy.channel.Medium.invalidate_plan`), so a
    frequency hopper does not force a global plan flush per hop.
    """

    __slots__ = ("name", "medium", "_position", "_channel_id",
                 "power_watts")

    def __init__(self, name: str, medium: Medium, position: Position,
                 channel_id: int = 1, power_dbm: float = 20.0):
        self.name = name
        self.medium = medium
        self._position = position
        self._channel_id = channel_id
        self.power_watts = dbm_to_watts(power_dbm)

    @property
    def position(self) -> Position:
        return self._position

    @position.setter
    def position(self, value: Position) -> None:
        if value is self._position:
            return
        self._position = value
        self.medium.invalidate_links(self)

    @property
    def channel_id(self) -> int:
        return self._channel_id

    @channel_id.setter
    def channel_id(self, value: int) -> None:
        if value == self._channel_id:
            return
        self._channel_id = value
        self.medium.invalidate_plan(self)

    def emit(self, duration: float) -> None:
        """Fan one energy burst out to the audible co-channel radios."""
        self.medium.transmit_energy(self, duration, self.power_watts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EnergySource {self.name} ch={self._channel_id}>"


class Emitter:
    """Base class: an :class:`EnergySource` plus start/stop and stats.

    The burst chain rides a reusable kernel
    :class:`~repro.core.engine.Timer` so :meth:`stop` cancels the
    pending tick outright — a stop/start toggle (attack-phase studies
    switch emitters on and off mid-run) must never leave a stale tick
    in the heap to double the chain.
    """

    def __init__(self, sim: Simulator, medium: Medium, position: Position,
                 channel_id: int = 1, power_dbm: float = 20.0,
                 name: str = "emitter"):
        self.sim = sim
        self.name = name
        self.source = EnergySource(name, medium, position,
                                   channel_id=channel_id,
                                   power_dbm=power_dbm)
        self.counters = Counter()
        self._tick_timer = Timer(sim, self._tick)
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    @property
    def channel_id(self) -> int:
        return self.source.channel_id

    @property
    def position(self) -> Position:
        return self.source.position

    def airtime_seconds(self) -> float:
        """Seconds of energy emitted so far."""
        return self.counters.get("airtime_us") * 1e-6

    def duty_cycle(self) -> float:
        """Fraction of the elapsed run this emitter was on the air."""
        now = self.sim.now
        return self.airtime_seconds() / now if now > 0.0 else 0.0

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        self._begin()

    def stop(self) -> None:
        self._active = False
        self._tick_timer.cancel()

    def _begin(self) -> None:
        raise NotImplementedError

    def _tick(self) -> None:
        raise NotImplementedError

    def _burst(self, duration: float) -> None:
        self.counters.incr("bursts")
        self.counters.incr("airtime_us", int(round(duration * 1e6)))
        self._emit(duration)

    def _emit(self, duration: float) -> None:
        """The actual energy release; multi-source emitters override."""
        self.source.emit(duration)


class ConstantJammer(Emitter):
    """Barrage jammer: continuous noise, modelled as chained bursts.

    One long burst per ``burst_duration`` keeps the event cost O(1) per
    burst instead of per symbol.  Each burst outlives its re-arm tick by
    :attr:`OVERLAP` so consecutive bursts genuinely overlap on the air —
    without it the previous end edge and the next begin edge land on
    the same instant (end first, by scheduling order) and every seam
    would flash a zero-duration idle/busy edge pair at each receiver.
    """

    #: Seam overlap between chained bursts (1 ns: far below any slot
    #: or propagation timescale, enough to keep CCA pinned busy).
    OVERLAP = 1e-9

    def __init__(self, sim: Simulator, medium: Medium, position: Position,
                 channel_id: int = 1, power_dbm: float = 20.0,
                 burst_duration: float = 10e-3, name: str = "jam-const"):
        super().__init__(sim, medium, position, channel_id=channel_id,
                         power_dbm=power_dbm, name=name)
        if burst_duration <= 0.0:
            raise ConfigurationError("burst_duration must be positive")
        self.burst_duration = burst_duration

    def _begin(self) -> None:
        self._tick()

    def _tick(self) -> None:
        if not self._active:
            return
        self._burst(self.burst_duration + self.OVERLAP)
        self._tick_timer.schedule(self.burst_duration)


class PeriodicJammer(Emitter):
    """Duty-cycled pulse jammer: ``on_time`` of noise every ``period``.

    ``offset`` staggers the first pulse so a field of identical jammers
    interleaves instead of pulsing in lockstep — the knob the
    interference-field macro uses to keep many bursts genuinely
    overlapping.
    """

    def __init__(self, sim: Simulator, medium: Medium, position: Position,
                 channel_id: int = 1, power_dbm: float = 20.0,
                 on_time: float = 1e-3, period: float = 2e-3,
                 offset: float = 0.0, name: str = "jam-pulse"):
        super().__init__(sim, medium, position, channel_id=channel_id,
                         power_dbm=power_dbm, name=name)
        if on_time <= 0.0 or period <= 0.0:
            raise ConfigurationError("on_time and period must be positive")
        if on_time > period:
            raise ConfigurationError("on_time cannot exceed period")
        self.on_time = on_time
        self.period = period
        self.offset = offset

    @property
    def duty(self) -> float:
        return self.on_time / self.period

    def _begin(self) -> None:
        self._tick_timer.schedule(self.offset)

    def _tick(self) -> None:
        if not self._active:
            return
        self._burst(self.on_time)
        self._tick_timer.schedule(self.period)


class SweepingJammer(Emitter):
    """Multi-channel sweep: dwell on each channel in turn, jamming it.

    Each dwell is one energy burst on the current channel followed by a
    retune — the retune invalidates only this sender's compiled plan,
    so sweeping across a busy band does not recompile the victims'.
    """

    def __init__(self, sim: Simulator, medium: Medium, position: Position,
                 channels: Sequence[int] = (1, 6, 11),
                 dwell: float = 2e-3, power_dbm: float = 20.0,
                 name: str = "jam-sweep"):
        if not channels:
            raise ConfigurationError("sweep needs at least one channel")
        if dwell <= 0.0:
            raise ConfigurationError("dwell must be positive")
        super().__init__(sim, medium, position, channel_id=channels[0],
                         power_dbm=power_dbm, name=name)
        self.channels = tuple(channels)
        self.dwell = dwell
        self._index = 0

    def _begin(self) -> None:
        self._tick()

    def _tick(self) -> None:
        if not self._active:
            return
        self.source.channel_id = self.channels[self._index]
        self._index = (self._index + 1) % len(self.channels)
        self.counters.incr("sweeps", 1 if self._index == 0 else 0)
        self._burst(self.dwell)
        self._tick_timer.schedule(self.dwell)


class ReactiveJammer:
    """Carrier-sensing jammer: detects a transmission, stomps its tail.

    Owns a real (attached) :class:`~repro.phy.transceiver.Radio` whose
    CCA-busy edge triggers a jamming burst after a short turnaround —
    the classic reactive jammer that spends no energy on an idle
    medium but corrupts the SINR of every frame it hears.  The radio's
    decodable-mode set is emptied so it never locks or decodes (it is
    an energy detector, not a receiver), and while it jams it is
    half-duplex deaf, exactly like any transmitter.

    After each burst the jammer re-checks the medium: if the victim
    frame (or another) is still on the air it chains another burst, so
    long frames stay jammed end-to-end.
    """

    def __init__(self, sim: Simulator, medium: Medium, position: Position,
                 standard: PhyStandard = DOT11B, channel_id: int = 1,
                 power_dbm: float = 20.0, turnaround: float = 5e-6,
                 burst_duration: float = 200e-6, name: str = "jam-react",
                 radio_config: Optional[RadioConfig] = None):
        if turnaround < 0.0 or burst_duration <= 0.0:
            raise ConfigurationError(
                "turnaround must be >= 0 and burst_duration positive")
        self.sim = sim
        self.name = name
        self.turnaround = turnaround
        self.burst_duration = burst_duration
        self.power_watts = dbm_to_watts(power_dbm)
        self.counters = Counter()
        self.radio = Radio(name, medium, standard, position,
                           channel_id=channel_id, config=radio_config)
        # Pure energy detector: never lock, never decode, never upcall.
        self.radio.decodable_modes.clear()
        self.radio.on_cca_busy = self._cca_busy
        self.radio.on_tx_end = self._tx_end
        self._fire_timer = Timer(sim, self._fire)
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    @property
    def position(self) -> Position:
        return self.radio.position

    def airtime_seconds(self) -> float:
        return self.counters.get("airtime_us") * 1e-6

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        # The medium may already be busy when the jammer wakes up.
        if self.radio.cca_busy():
            self._trigger()

    def stop(self) -> None:
        self._active = False
        self._fire_timer.cancel()

    def _cca_busy(self) -> None:
        if self._active:
            self._trigger()

    def _trigger(self) -> None:
        if self._fire_timer.armed or self.radio.state is RadioState.TX:
            return
        self.counters.incr("triggers")
        self._fire_timer.schedule(self.turnaround)

    def _fire(self) -> None:
        if not self._active or self.radio.state is RadioState.TX:
            return
        self.counters.incr("bursts")
        self.counters.incr("airtime_us",
                           int(round(self.burst_duration * 1e6)))
        self.radio.transmit_energy(self.burst_duration, self.power_watts)

    def _tx_end(self) -> None:
        # Chain: if energy is still arriving (the victim frame outlived
        # our burst), keep jamming it.
        if self._active and self.radio.cca_busy():
            self._trigger()


class BluetoothHopper(Emitter):
    """A Bluetooth-style FHSS bystander sharing the 2.4 GHz band.

    Reuses the :mod:`repro.wpan.bluetooth` TDD timing: one transmission
    opportunity per 625 us slot, of which :data:`BT_TX_TIME` is on the
    air.  Each slot the hop sequence lands inside the victim 802.11
    channel's 22 MHz passband with probability 22/79 (the geometric
    overlap of a 79-hop sequence), drawn from a named RNG stream so a
    seeded run reproduces the same hop pattern.  ``tx_probability``
    models link load (a saturated ACL link transmits almost every
    slot; an idle one mostly POLL/NULLs).
    """

    def __init__(self, sim: Simulator, medium: Medium, position: Position,
                 channel_id: int = 1, power_dbm: float = 4.0,
                 tx_probability: float = 1.0, name: str = "bt-hopper"):
        if not 0.0 <= tx_probability <= 1.0:
            raise ConfigurationError("tx_probability must be in [0, 1]")
        super().__init__(sim, medium, position, channel_id=channel_id,
                         power_dbm=power_dbm, name=name)
        self.tx_probability = tx_probability
        self._overlap = BT_OVERLAP_CHANNELS / BT_HOP_CHANNELS
        self._rng = sim.rng.stream(f"bt.{name}")

    def _begin(self) -> None:
        self._tick()

    def _tick(self) -> None:
        if not self._active:
            return
        self.counters.incr("slots")
        draw = self._rng.random()
        if draw < self._overlap * self.tx_probability:
            self.counters.incr("hits")
            self._burst(BT_TX_TIME)
        self._tick_timer.schedule(BT_SLOT_TIME)


class MicrowaveOven(Emitter):
    """Broadband mains-synchronous burst source (the kitchen classic).

    A magnetron emits during one half of every AC cycle, splattering
    the whole 2.4 GHz band: on for ``1/(2*mains_hz)`` out of every
    ``1/mains_hz``, across every channel in ``channels`` at once (one
    :class:`EnergySource` per channel, so each co-channel cell pays
    only for its own audible arrivals; airtime is counted once per
    burst, not per channel).
    """

    def __init__(self, sim: Simulator, medium: Medium, position: Position,
                 channels: Sequence[int] = (1, 6, 11),
                 mains_hz: float = 50.0, power_dbm: float = 30.0,
                 name: str = "microwave"):
        if not channels:
            raise ConfigurationError("the oven needs at least one channel")
        if mains_hz <= 0.0:
            raise ConfigurationError("mains_hz must be positive")
        super().__init__(sim, medium, position, channel_id=channels[0],
                         power_dbm=power_dbm, name=name)
        self.period = 1.0 / mains_hz
        self.on_time = self.period / 2.0
        # The base source covers channels[0]; siblings cover the rest.
        self.sources: List[EnergySource] = [self.source] + [
            EnergySource(f"{name}-ch{channel}", medium, position,
                         channel_id=channel, power_dbm=power_dbm)
            for channel in channels[1:]]

    def _begin(self) -> None:
        self._tick()

    def _tick(self) -> None:
        if not self._active:
            return
        self._burst(self.on_time)
        self._tick_timer.schedule(self.period)

    def _emit(self, duration: float) -> None:
        for source in self.sources:
            source.emit(duration)
