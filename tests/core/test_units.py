"""Tests for unit conversions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import units


class TestTime:
    def test_usec_and_msec(self):
        assert units.usec(10) == pytest.approx(10e-6)
        assert units.msec(5) == pytest.approx(5e-3)


class TestRates:
    def test_rate_constructors(self):
        assert units.kbps(720) == 720_000
        assert units.mbps(54) == 54e6
        assert units.gbps(1.3) == pytest.approx(1.3e9)
        assert units.to_mbps(11e6) == pytest.approx(11.0)

    def test_transmission_time(self):
        # 1500 bytes at 54 Mb/s.
        assert units.transmission_time(1500 * 8, units.mbps(54)) == \
            pytest.approx(12000 / 54e6)

    def test_transmission_time_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            units.transmission_time(100, 0.0)
        with pytest.raises(ValueError):
            units.transmission_time(-1, 1e6)


class TestPower:
    def test_dbm_watts_known_points(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)
        assert units.watts_to_dbm(1e-3) == pytest.approx(0.0)

    def test_zero_watts_is_minus_infinity_dbm(self):
        assert units.watts_to_dbm(0.0) == -math.inf

    @given(st.floats(min_value=-120, max_value=60))
    def test_dbm_round_trip(self, dbm):
        assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == \
            pytest.approx(dbm, abs=1e-9)

    def test_db_linear_round_trip(self):
        assert units.linear_to_db(units.db_to_linear(13.0)) == \
            pytest.approx(13.0)
        assert units.linear_to_db(0.0) == -math.inf


class TestNoise:
    def test_wlan_noise_floor_ballpark(self):
        # kTB over 20 MHz with a 7 dB noise figure: about -94 dBm.
        noise = units.thermal_noise_watts(20e6, noise_figure_db=7.0)
        assert units.watts_to_dbm(noise) == pytest.approx(-94.0, abs=1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.thermal_noise_watts(0.0)


class TestWavelength:
    def test_2ghz4_wavelength(self):
        assert units.frequency_to_wavelength(2.4e9) == \
            pytest.approx(0.1249, abs=1e-3)

    def test_bad_frequency_rejected(self):
        with pytest.raises(ValueError):
            units.frequency_to_wavelength(-1.0)
