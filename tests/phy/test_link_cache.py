"""Tests for the PHY link-budget cache and its invalidation paths."""

import pytest

from repro.core import Position, Simulator
from repro.mobility.models import LinearMobility
from repro.phy.channel import LinkCache, Medium
from repro.phy.propagation import LogDistance
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio


def _medium(sim, **kwargs):
    return Medium(sim, LogDistance(DOT11B.band_hz, exponent=3.0), **kwargs)


class TestLinkCacheLookups:
    def test_lookup_hits_after_first_computation(self, sim):
        medium = _medium(sim)
        a = Radio("a", medium, DOT11B, Position(0, 0, 0))
        b = Radio("b", medium, DOT11B, Position(10, 0, 0))
        first = medium.links.lookup(medium.propagation, a, b, a.tx_power_watts)
        second = medium.links.lookup(medium.propagation, a, b, a.tx_power_watts)
        assert first == second
        assert medium.links.hits == 1
        assert medium.links.misses == 1

    def test_cached_power_matches_model_exactly(self, sim):
        medium = _medium(sim)
        a = Radio("a", medium, DOT11B, Position(0, 0, 0))
        b = Radio("b", medium, DOT11B, Position(25, 0, 0))
        rx_power, _delay, *_ = medium.links.lookup(
            medium.propagation, a, b, a.tx_power_watts)
        expected = medium.propagation.received_power_watts(
            a.tx_power_watts, a.position, b.position)
        assert rx_power == expected  # bit-identical, not approx

    def test_moving_a_radio_invalidates_its_links(self, sim):
        medium = _medium(sim)
        a = Radio("a", medium, DOT11B, Position(0, 0, 0))
        b = Radio("b", medium, DOT11B, Position(10, 0, 0))
        near = medium.links.lookup(medium.propagation, a, b,
                                   a.tx_power_watts)[0]
        b.position = Position(50, 0, 0)  # the position setter invalidates
        far = medium.links.lookup(medium.propagation, a, b,
                                  a.tx_power_watts)[0]
        assert far < near
        assert medium.links.misses == 2

    def test_explicit_invalidate_single_radio(self, sim):
        medium = _medium(sim)
        a = Radio("a", medium, DOT11B, Position(0, 0, 0))
        b = Radio("b", medium, DOT11B, Position(10, 0, 0))
        c = Radio("c", medium, DOT11B, Position(20, 0, 0))
        for rx in (b, c):
            medium.links.lookup(medium.propagation, a, rx, a.tx_power_watts)
        assert len(medium.links) == 2
        medium.invalidate_links(b)
        assert len(medium.links) == 1
        medium.invalidate_links()
        assert len(medium.links) == 0

    def test_power_change_misses_the_cache(self, sim):
        medium = _medium(sim)
        a = Radio("a", medium, DOT11B, Position(0, 0, 0))
        b = Radio("b", medium, DOT11B, Position(10, 0, 0))
        low = medium.links.lookup(medium.propagation, a, b, 0.01)[0]
        high = medium.links.lookup(medium.propagation, a, b, 0.1)[0]
        assert high > low


class TestMobilityInvalidation:
    def test_moving_station_sees_updated_receive_power(self, sim):
        """A radio driven by a mobility model must observe fresh link
        budgets on the next transmission after every move."""
        medium = _medium(sim)
        tx = Radio("tx", medium, DOT11B, Position(0, 0, 0))
        rx = Radio("rx", medium, DOT11B, Position(5, 0, 0))
        before = medium.link_rx_power_dbm(tx, rx)
        # Warm the transmit-path cache too.
        medium.links.lookup(medium.propagation, tx, rx, tx.tx_power_watts)
        mobility = LinearMobility(sim, rx, Position(80, 0, 0),
                                  speed_mps=25.0, tick=0.1)
        mobility.start()
        sim.run(until=3.5)  # walked ~80 m
        after_cached = medium.links.lookup(
            medium.propagation, tx, rx, tx.tx_power_watts)[0]
        expected = medium.propagation.received_power_watts(
            tx.tx_power_watts, tx.position, rx.position)
        assert after_cached == expected
        assert medium.link_rx_power_dbm(tx, rx) < before - 10.0

    def test_identity_validation_catches_direct_position_writes(self, sim):
        """Even bypassing the property (worst case), a replaced Position
        object fails the identity check and recomputes."""
        medium = _medium(sim)
        tx = Radio("tx", medium, DOT11B, Position(0, 0, 0))
        rx = Radio("rx", medium, DOT11B, Position(5, 0, 0))
        near = medium.links.lookup(medium.propagation, tx, rx,
                                   tx.tx_power_watts)[0]
        rx._position = Position(50, 0, 0)  # no invalidation hook fired
        far = medium.links.lookup(medium.propagation, tx, rx,
                                  tx.tx_power_watts)[0]
        assert far < near


class TestCachedVersusUncachedDeterminism:
    def test_same_seed_same_delivery(self):
        """A full transmit/receive cycle with the cache on and off must
        deliver identical payloads at identical powers."""
        arrivals = []

        class SpyRadio(Radio):
            # Radio itself is __slots__-only; a subclass is the hook
            # point for observing per-arrival powers.
            def arrival_begins(self, transmission, power):
                arrivals.append(power)
                Radio.arrival_begins(self, transmission, power)

        def run(cache_links):
            sim = Simulator(seed=3)
            medium = _medium(sim, cache_links=cache_links)
            tx = Radio("tx", medium, DOT11B, Position(0, 0, 0))
            rx = SpyRadio("rx", medium, DOT11B, Position(12, 0, 0))
            arrivals.clear()
            mode = DOT11B.modes[0]
            for _ in range(5):
                tx.transmit(b"payload", 800, mode)
                sim.run(until=sim.now + 0.01)
            return list(arrivals)

        assert run(True) == run(False)
