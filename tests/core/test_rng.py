"""Tests for named RNG streams."""

from repro.core.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_deterministic_per_seed(self):
        first = [RngRegistry(5).stream("mac").random() for _ in range(3)]
        second = [RngRegistry(5).stream("mac").random() for _ in range(3)]
        assert first == second

    def test_different_names_are_independent(self):
        registry = RngRegistry(5)
        a = [registry.stream("a").random() for _ in range(5)]
        b = [registry.stream("b").random() for _ in range(5)]
        assert a != b

    def test_adding_stream_does_not_perturb_existing(self):
        plain = RngRegistry(9)
        values_before = [plain.stream("x").random() for _ in range(5)]

        with_extra = RngRegistry(9)
        with_extra.stream("newcomer").random()
        values_after = [with_extra.stream("x").random() for _ in range(5)]
        assert values_before == values_after

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("s").random()
        b = RngRegistry(2).stream("s").random()
        assert a != b

    def test_fork_is_deterministic_and_distinct(self):
        base = RngRegistry(3)
        fork_a = base.fork("rep1")
        fork_b = RngRegistry(3).fork("rep1")
        assert fork_a.stream("x").random() == fork_b.stream("x").random()
        assert base.fork("rep1").master_seed != base.fork("rep2").master_seed

    def test_stream_names_sorted(self):
        registry = RngRegistry(0)
        registry.stream("zeta")
        registry.stream("alpha")
        assert registry.stream_names() == ["alpha", "zeta"]


class TestRngNamespace:
    def test_namespace_prefixes_stream_names(self):
        registry = RngRegistry(4)
        ns = registry.namespace("cell/a")
        assert ns.stream("mac").random() \
            == RngRegistry(4).stream("cell/a/mac").random()

    def test_namespace_is_placement_independent(self):
        # The sharded-executor property: the same namespaced stream
        # draws identically no matter what else the registry served.
        alone = RngRegistry(7).namespace("cell/x").stream("s").random()
        crowded_registry = RngRegistry(7)
        crowded_registry.stream("unrelated").random()
        crowded_registry.namespace("cell/other").stream("s").random()
        crowded = crowded_registry.namespace("cell/x").stream("s").random()
        assert alone == crowded

    def test_nested_namespace_joins_with_slash(self):
        registry = RngRegistry(2)
        nested = registry.namespace("cell/a").namespace("traffic")
        assert nested.prefix == "cell/a/traffic"
        assert nested.stream("jitter").random() \
            == RngRegistry(2).stream("cell/a/traffic/jitter").random()

    def test_namespace_shares_parent_registry(self):
        registry = RngRegistry(1)
        ns = registry.namespace("cell/a")
        assert ns.stream("s") is registry.stream("cell/a/s")
        assert ns.master_seed == registry.master_seed

    def test_empty_prefix_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            RngRegistry(0).namespace("")
