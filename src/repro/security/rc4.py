"""RC4 stream cipher, from scratch.

RC4 is the cipher underneath both WEP and TKIP (source text §5.2).  It
is implemented here in full — key-scheduling algorithm (KSA) and
pseudo-random generation algorithm (PRGA) — because the WEP key-recovery
attack in :mod:`repro.security.wep` needs to run the *actual* KSA to
exploit its weak-IV bias, not a stand-in.

RC4 is cryptographically broken; it exists in this library as an object
of study, not for protecting anything.

Implementation note: :func:`ksa`/:func:`prga` keep their teaching-
friendly list/generator forms (the FMS attack reasons about the
permutation state directly), while :func:`crypt` — the function WEP and
TKIP call per frame — runs the whole cipher as a single ``bytearray``
block loop with no per-byte generator machinery.
"""

from __future__ import annotations

from typing import Iterator, List

from ..core.errors import SecurityError

#: Identity permutation, copied (cheaply) into a bytearray per key setup.
_IDENTITY = bytes(range(256))


def ksa(key: bytes) -> List[int]:
    """Key-scheduling algorithm: produce the initial permutation."""
    if not 1 <= len(key) <= 256:
        raise SecurityError(f"RC4 key must be 1..256 bytes, got {len(key)}")
    state = list(range(256))
    j = 0
    for i in range(256):
        j = (j + state[i] + key[i % len(key)]) & 0xFF
        state[i], state[j] = state[j], state[i]
    return state


def prga(state: List[int]) -> Iterator[int]:
    """Pseudo-random generation algorithm: yield keystream bytes.

    Mutates (a copy of) the permutation; call with ``ksa(key)`` output.
    """
    state = list(state)
    i = j = 0
    while True:
        i = (i + 1) & 0xFF
        j = (j + state[i]) & 0xFF
        state[i], state[j] = state[j], state[i]
        yield state[(state[i] + state[j]) & 0xFF]


def crypt(key: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt (RC4 is symmetric) ``data`` under ``key``.

    Block implementation: one ``bytearray`` permutation, one output
    buffer, no iterator protocol in the loop.  This is the hot path for
    every WEP/TKIP frame and for the FMS attack oracle.
    """
    key_len = len(key)
    if not 1 <= key_len <= 256:
        raise SecurityError(f"RC4 key must be 1..256 bytes, got {key_len}")
    state = bytearray(_IDENTITY)
    j = 0
    for i in range(256):
        j = (j + state[i] + key[i % key_len]) & 0xFF
        state[i], state[j] = state[j], state[i]
    out = bytearray(data)
    i = j = 0
    for position in range(len(out)):
        i = (i + 1) & 0xFF
        j = (j + state[i]) & 0xFF
        state_i = state[i]
        state_j = state[j]
        state[i] = state_j
        state[j] = state_i
        out[position] ^= state[(state_i + state_j) & 0xFF]
    return bytes(out)


def keystream(key: bytes, length: int) -> bytes:
    """First ``length`` keystream bytes for ``key``.

    Implemented as the block cipher applied to zeros (XOR with zero
    yields the raw keystream) so it shares the fast path.
    """
    if length < 0:
        raise SecurityError(f"negative keystream length: {length}")
    return crypt(key, bytes(length))
