"""repro — a discrete-event wireless network simulation library.

Reproduction of "Wireless Networks": an IEEE 802.11 MAC/PHY simulator
with WPAN/WMAN/WWAN substrates and link-layer security, built on a
deterministic discrete-event kernel.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the experiment index.

Quickstart::

    from repro import Simulator, scenarios

    sim = Simulator(seed=1)
    bss = scenarios.build_infrastructure_bss(sim, station_count=2)
    bss.stations[0].send(bss.stations[1].address, b"hello")
    sim.run(until=1.0)

The subpackages follow the layering described in DESIGN.md:
``core`` (kernel) -> ``phy`` -> ``mac`` -> ``net``, with technology
families (``wpan``, ``wman``, ``wwan``), ``security``, ``adversary``,
``traffic``, ``mobility``, ``analysis`` and ``scenarios`` alongside.
"""

from . import adversary, analysis, core, mac, mobility, net, parallel, phy
from . import routing, scenarios, security, traffic, wman, wpan, wwan
from .core import Simulator

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "__version__",
    "adversary",
    "analysis",
    "core",
    "mac",
    "mobility",
    "net",
    "parallel",
    "phy",
    "routing",
    "scenarios",
    "security",
    "traffic",
    "wman",
    "wpan",
    "wwan",
]
