"""Tests for the energy meter."""

import pytest

from repro.core import Position
from repro.core.energy import EnergyMeter, PowerProfile
from repro.core.errors import ConfigurationError
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio


class TestPowerProfile:
    def test_default_ordering(self):
        profile = PowerProfile()
        assert profile.tx_watts > profile.rx_watts
        assert profile.idle_watts > profile.sleep_watts * 50

    def test_unknown_state_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerProfile().watts_for("warp")


class TestEnergyMeter:
    def test_integrates_over_time(self, sim):
        profile = PowerProfile(idle_watts=2.0, sleep_watts=0.5)
        meter = EnergyMeter(sim, profile=profile)
        sim.schedule(1.0, meter.state_changed, "sleep")
        sim.schedule(3.0, meter.state_changed, "idle")
        sim.run()
        sim.schedule(1.0, lambda: None)
        sim.run(until=4.0)
        # 1s idle (2J) + 2s sleep (1J) + 1s idle (2J) = 5J.
        assert meter.joules == pytest.approx(5.0)
        assert meter.seconds_in("sleep") == pytest.approx(2.0)
        assert meter.seconds_in("idle") == pytest.approx(2.0)

    def test_mean_power(self, sim):
        meter = EnergyMeter(sim, profile=PowerProfile(idle_watts=1.5))
        sim.run(until=2.0)
        assert meter.mean_power_watts() == pytest.approx(1.5)

    def test_attached_radio_states_tracked(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        tx = Radio("tx", medium, DOT11B, Position(0, 0, 0))
        rx = Radio("rx", medium, DOT11B, Position(5, 0, 0))
        meter = EnergyMeter(sim)
        meter.attach(tx)
        airtime = tx.transmit("x", 80_000, DOT11B.modes[0])
        sim.run(until=1.0)
        assert meter.seconds_in("tx") == pytest.approx(airtime, rel=1e-6)

    def test_sleep_saves_energy(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        radio = Radio("r", medium, DOT11B, Position(0, 0, 0))
        awake_meter = EnergyMeter(sim)
        awake_meter.attach(radio)
        sim.run(until=1.0)
        awake_joules = awake_meter.joules

        sim2_radio = Radio("r2", medium, DOT11B, Position(1, 0, 0))
        sleep_meter = EnergyMeter(sim)
        sleep_meter.attach(sim2_radio)
        sim2_radio.sleep()
        sim.run(until=2.0)
        assert sleep_meter.joules < awake_joules / 20
