"""Crashing a node mid-activity must leave the rest of the air truthful.

Satellite coverage: crash-during-TX and crash-during-backoff.  The
in-flight burst keeps propagating (it already left the antenna), every
peer's arrival table drains on its own, and — in both exact and fast
interference modes — the incident-power accumulator snaps back to
exactly 0.0 once the air clears.
"""

from repro.core import Position, Simulator
from repro.mac.addresses import reset_allocator
from repro.mac.addresses import allocate_address
from repro.mac.dcf import DcfMac, MacListener
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio, RadioState

A = Position(0, 0, 0)
B = Position(10, 0, 0)


class _Count(MacListener):
    def __init__(self):
        self.frames = 0

    def mac_receive(self, source, destination, payload, meta):
        self.frames += 1


def _pair(sim, exact):
    medium = Medium(sim, FixedLoss(50.0), exact=exact)
    tx_radio = Radio("crasher", medium, DOT11B, A)
    tx = DcfMac(sim, tx_radio, allocate_address())
    rx_radio = Radio("peer", medium, DOT11B, B)
    rx = DcfMac(sim, rx_radio, allocate_address())
    counter = _Count()
    rx.listener = counter
    return medium, tx, rx, counter


def _crash(mac):
    mac.crash()
    mac.radio.power_off()


def _start_long_tx(sim, tx, rx):
    """Queue a big frame and run until the sender's PHY is mid-burst.

    1500 B at ARF's starting 11 Mb/s is a ~1.3 ms burst; DIFS plus a
    maximal initial backoff is under 0.7 ms, so stopping 0.7 ms after
    the send always lands inside the burst.
    """
    starts = []
    tx.radio.on_state_change = (
        lambda v: starts.append(sim.now) if v == RadioState.TX.value
        else None)
    tx.send(rx.address, bytes(1500))
    sim.run(until=sim.now + 0.0007)
    assert tx.radio.state is RadioState.TX
    tx.radio.on_state_change = None
    return starts[0]


class TestCrashDuringTx:
    def _run(self, exact):
        sim = Simulator(seed=7)
        medium, tx, rx, counter = _pair(sim, exact)
        _start_long_tx(sim, tx, rx)
        # Mid-burst: the peer is already seeing the energy.
        assert rx.radio.total_incident_power_watts() > 0.0
        _crash(tx)
        assert tx.radio.state is RadioState.SLEEP
        sim.run(until=sim.now + 0.1)
        return sim, tx, rx, counter

    def test_exact_mode_arrivals_drain(self):
        sim, tx, rx, counter = self._run(exact=True)
        assert not rx.radio._arrivals
        assert rx.radio.total_incident_power_watts() == 0.0
        assert not rx.radio.cca_busy()

    def test_fast_mode_accumulator_snaps_to_zero(self):
        sim, tx, rx, counter = self._run(exact=False)
        assert not rx.radio._arrivals
        # Not approx: the accumulator must land on exactly 0.0 or every
        # later CCA decision compares against leftover epsilon.
        assert rx.radio._incident_watts == 0.0
        assert not rx.radio.cca_busy()

    def test_stale_tx_complete_is_suppressed(self):
        sim = Simulator(seed=7)
        medium, tx, rx, counter = _pair(sim, exact=True)
        ends = []
        original = tx.radio.on_tx_end

        def spy():
            ends.append(sim.now)
            original()
        tx.radio.on_tx_end = spy
        _start_long_tx(sim, tx, rx)
        _crash(tx)
        sim.run(until=sim.now + 0.1)
        # schedule_fast events cannot be cancelled: the completion event
        # still pops, but the epoch bump makes it a no-op — the radio
        # stays powered off and no tx-end upcall fires.
        assert ends == []
        assert tx.radio.state is RadioState.SLEEP

    def test_quick_restart_new_tx_outlives_stale_completion(self):
        def build():
            reset_allocator()
            sim = Simulator(seed=7)
            return (sim,) + _pair(sim, exact=True)

        # Control run, same seed: learn when the first burst's
        # completion event fires.  The crash run below is bit-identical
        # up to the crash, so its stale completion pops at this time.
        sim, medium, tx, rx, counter = build()
        changes = []
        tx.radio.on_state_change = lambda v: changes.append((sim.now, v))
        tx.send(rx.address, bytes(1500))
        sim.run(until=0.05)
        start = next(t for t, v in changes if v == RadioState.TX.value)
        old_end = next(t for t, v in changes
                       if t > start and v != RadioState.TX.value)

        sim, medium, tx, rx, counter = build()
        tx.send(rx.address, bytes(1500))
        # Crash early in the burst so the reboot's new burst (DIFS +
        # initial backoff < 0.7 ms later) is on the air well before the
        # dead burst's completion event pops.
        sim.run(until=start + (old_end - start) * 0.1)
        assert tx.radio.state is RadioState.TX
        _crash(tx)
        tx.radio.power_on()
        tx.send(rx.address, bytes(1500))
        sim.run(until=old_end + 1e-6)
        # The stale completion popped while the new burst was on the
        # air; the epoch guard must not end the new burst early.
        assert tx.radio.state is RadioState.TX
        sim.run(until=old_end + 0.5)
        assert tx.radio.state is not RadioState.TX
        assert counter.frames >= 1

    def test_peer_recovers_the_channel(self):
        """After the crasher's energy drains the peer can win the medium
        and deliver to a third node as if the crash never happened."""
        sim = Simulator(seed=7)
        medium, tx, rx, counter = _pair(sim, exact=True)
        third_radio = Radio("third", medium, DOT11B, Position(5, 5, 0))
        third = DcfMac(sim, third_radio, allocate_address())
        third_counter = _Count()
        third.listener = third_counter
        _start_long_tx(sim, tx, rx)
        _crash(tx)
        rx.send(third.address, bytes(200))
        sim.run(until=sim.now + 0.5)
        assert third_counter.frames == 1
        assert not rx.radio.cca_busy()


class TestCrashDuringBackoff:
    def test_countdown_cancelled_and_air_drains(self):
        sim = Simulator(seed=7)
        medium, tx, rx, counter = _pair(sim, exact=False)
        third_radio = Radio("third", medium, DOT11B, Position(5, 5, 0))
        third = DcfMac(sim, third_radio, allocate_address())
        # Get the crasher deferring: queue its frame while the third
        # node's burst holds the medium busy.
        _start_long_tx(sim, third, rx)
        tx.send(rx.address, bytes(200))
        sim.run(until=sim.now + 1e-4)
        assert tx.radio.state is not RadioState.TX
        _crash(tx)
        assert not tx._countdown._armed
        assert not tx._ifs._armed
        assert tx.queue.empty and tx._current is None
        sim.run(until=sim.now + 0.5)
        # The crasher never transmitted its queued frame...
        assert counter.frames == 1          # the third node's frame only
        # ...and everyone's interference state drained clean.
        for radio in (tx.radio, rx.radio, third.radio):
            assert not radio._arrivals
            assert radio._incident_watts == 0.0

    def test_nav_cleared_on_crash(self):
        sim = Simulator(seed=7)
        medium, tx, rx, counter = _pair(sim, exact=True)
        tx.nav.set_until(sim.now + 0.01)
        assert tx.nav.busy
        tx.crash()
        assert not tx.nav.busy
