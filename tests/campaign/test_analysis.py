"""Seed-ensemble statistics and the differential tolerance gate."""

import math

import pytest

from repro.analysis.campaign import (Mismatch, compare_stats,
                                     differential_gate, ensemble,
                                     ensemble_table, group_rows,
                                     render_ensemble_table,
                                     render_sweep_curve, sweep_curve,
                                     t_critical)


def row(axes, seed, stats, status="done"):
    return {"label": f"seed={seed}", "axes": axes, "seed": seed,
            "status": status, "stats": stats}


class TestEnsemble:
    def test_t_critical_textbook_values(self):
        assert t_critical(1) == pytest.approx(12.706)
        assert t_critical(4) == pytest.approx(2.776)
        assert t_critical(30) == pytest.approx(2.042)
        assert t_critical(200) == pytest.approx(1.960)
        with pytest.raises(ValueError):
            t_critical(0)

    def test_single_sample(self):
        stat = ensemble([5.0])
        assert (stat.n, stat.mean, stat.std, stat.ci95) == (1, 5.0, 0.0,
                                                            0.0)

    def test_hand_computed_ci(self):
        # n=4, mean=5, sample std=2 -> ci95 = 3.182 * 2 / 2 = 3.182
        stat = ensemble([3.0, 4.0, 6.0, 7.0])
        assert stat.mean == pytest.approx(5.0)
        assert stat.std == pytest.approx(math.sqrt(10 / 3))
        assert stat.ci95 == pytest.approx(
            3.182 * stat.std / 2)
        assert stat.low == pytest.approx(stat.mean - stat.ci95)
        assert stat.high == pytest.approx(stat.mean + stat.ci95)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ensemble([])


class TestAggregation:
    def make_rows(self):
        return [
            row({"a.x": 1}, 3, {"pdr": 0.9, "events": 100}),
            row({"a.x": 1}, 4, {"pdr": 0.7, "events": 110}),
            row({"a.x": 2}, 3, {"pdr": 0.5, "events": 120}),
            row({"a.x": 2}, 4, {"pdr": 0.3, "events": 130}),
            row({"a.x": 3}, 3, {}, status="failed"),
        ]

    def test_group_rows_skips_non_done(self):
        groups = group_rows(self.make_rows())
        assert [dict(key) for key in groups] == [{"a.x": 1}, {"a.x": 2}]
        assert all(len(group) == 2 for group in groups.values())

    def test_ensemble_table(self):
        table = ensemble_table(self.make_rows(), stats=["pdr"])
        assert [label for label, _ in table] == ["x=1", "x=2"]
        assert table[0][1]["pdr"].mean == pytest.approx(0.8)
        assert table[1][1]["pdr"].mean == pytest.approx(0.4)

    def test_ensemble_table_missing_stat_is_loud(self):
        with pytest.raises(KeyError, match="nope"):
            ensemble_table(self.make_rows(), stats=["nope"])

    def test_repr_string_floats_are_revived(self):
        # read_store keeps canonical repr'd floats as strings.
        rows = [row({"a.x": 1}, 3, {"pdr": "0.25", "note": "text"})]
        table = ensemble_table(rows)
        assert table[0][1]["pdr"].mean == pytest.approx(0.25)
        assert "note" not in table[0][1]

    def test_sweep_curve_orders_by_first_appearance(self):
        curve = sweep_curve(self.make_rows(), "a.x", "pdr")
        assert [x for x, _ in curve] == [1, 2]
        assert curve[0][1].n == 2

    def test_sweep_curve_missing_axis_or_stat(self):
        with pytest.raises(KeyError, match="no sweep axis"):
            sweep_curve(self.make_rows(), "a.y", "pdr")
        with pytest.raises(KeyError, match="no statistic"):
            sweep_curve(self.make_rows(), "a.x", "nope")

    def test_renderers_produce_tables(self):
        rows = self.make_rows()
        text = render_ensemble_table("t", rows, ["pdr", "events"])
        assert "pdr mean" in text and "x=1" in text
        text = render_sweep_curve("t", rows, "a.x", "pdr")
        assert text.count("\n") >= 5


class TestDifferential:
    def test_within_tolerance_passes(self):
        ref = [row({}, 3, {"pdr": 0.90, "delivered": 100})]
        cand = [row({}, 3, {"pdr": 0.91, "delivered": 101})]
        tolerances = {"pdr": {"abs": 0.02}, "delivered": {"rel": 0.02}}
        assert compare_stats(ref, cand, tolerances) == []
        differential_gate(ref, cand, tolerances)  # no raise

    def test_violation_reports_stat_and_limit(self):
        ref = [row({}, 3, {"pdr": 0.90})]
        cand = [row({}, 3, {"pdr": 0.80})]
        mismatches = compare_stats(ref, cand, {"pdr": {"abs": 0.02}})
        assert len(mismatches) == 1
        mismatch = mismatches[0]
        assert isinstance(mismatch, Mismatch)
        assert mismatch.stat == "pdr"
        assert mismatch.delta == pytest.approx(0.10)
        assert mismatch.limit == pytest.approx(0.02)
        with pytest.raises(AssertionError, match="pdr"):
            differential_gate(ref, cand, {"pdr": {"abs": 0.02}})

    def test_bare_number_tolerance_is_absolute(self):
        ref = [row({}, 3, {"x": 10.0})]
        cand = [row({}, 3, {"x": 10.4})]
        assert compare_stats(ref, cand, {"x": 0.5}) == []
        assert len(compare_stats(ref, cand, {"x": 0.3})) == 1

    def test_missing_row_and_missing_stat_are_violations(self):
        ref = [row({}, 3, {"pdr": 0.9}), row({}, 4, {"pdr": 0.9})]
        cand = [row({}, 3, {"other": 1.0})]
        mismatches = compare_stats(ref, cand, {"pdr": {"abs": 0.5}})
        kinds = {m.stat for m in mismatches}
        assert "done row count" in kinds
        assert "(row missing)" in kinds
        assert "pdr (absent)" in kinds

    def test_matching_ignores_mode_difference(self):
        # Identity is (axes, seed): rows from an exact and a fast
        # campaign pair up even though their specs differ in profile.
        ref = [row({"p": 1}, 3, {"x": 1.0}), row({"p": 2}, 3, {"x": 2.0})]
        cand = [row({"p": 2}, 3, {"x": 2.0}), row({"p": 1}, 3, {"x": 1.0})]
        assert compare_stats(ref, cand, {"x": 0.0}) == []
