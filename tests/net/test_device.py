"""Tests for the WirelessDevice base plumbing."""

import pytest

from repro.core import Position, Simulator
from repro.mac.addresses import MacAddress
from repro.net.device import WirelessDevice
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B


def pair(sim):
    medium = Medium(sim, FixedLoss(50.0))
    a = WirelessDevice(sim, medium, DOT11B, Position(0, 0, 0), name="a")
    b = WirelessDevice(sim, medium, DOT11B, Position(5, 0, 0), name="b")
    return a, b


class TestWirelessDevice:
    def test_auto_allocated_address_and_name(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        device = WirelessDevice(sim, medium, DOT11B, Position(0, 0, 0))
        assert device.address.is_locally_administered
        assert str(device.address) in device.name

    def test_explicit_address(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        address = MacAddress.from_string("02:aa:bb:cc:dd:ee")
        device = WirelessDevice(sim, medium, DOT11B, Position(0, 0, 0),
                                address=address)
        assert device.address == address
        assert device.mac.address == address

    def test_receive_hook_called(self, sim):
        a, b = pair(sim)
        inbox = []
        b.on_receive(lambda src, payload, meta: inbox.append((src, payload)))
        a.mac.send(b.address, b"direct")
        sim.run(until=0.5)
        assert inbox == [(a.address, b"direct")]

    def test_tx_complete_hook_called(self, sim):
        a, b = pair(sim)
        outcomes = []
        a.on_tx_complete(lambda msdu, ok: outcomes.append(ok))
        a.mac.send(b.address, b"x")
        sim.run(until=0.5)
        assert outcomes == [True]

    def test_multiple_receive_hooks_and_unsubscribe(self, sim):
        """Several subscribers coexist (an app sink plus a forwarding
        engine); unsubscribing removes exactly one of them."""
        a, b = pair(sim)
        first, second = [], []
        unsubscribe = b.on_receive(lambda src, p, m: first.append(p))
        b.on_receive(lambda src, p, m: second.append(p))
        a.mac.send(b.address, b"one")
        sim.run(until=0.5)
        assert first == [b"one"] and second == [b"one"]
        unsubscribe()
        unsubscribe()  # idempotent
        a.mac.send(b.address, b"two")
        sim.run(until=1.0)
        assert first == [b"one"] and second == [b"one", b"two"]

    def test_position_proxies_radio(self, sim):
        a, _ = pair(sim)
        a.position = Position(9, 9, 0)
        assert a.radio.position == Position(9, 9, 0)

    def test_frames_for_others_not_delivered_up(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        a = WirelessDevice(sim, medium, DOT11B, Position(0, 0, 0))
        b = WirelessDevice(sim, medium, DOT11B, Position(5, 0, 0))
        c = WirelessDevice(sim, medium, DOT11B, Position(2, 0, 0))
        inbox_c = []
        c.on_receive(lambda src, p, m: inbox_c.append(p))
        a.mac.send(b.address, b"for b only")
        sim.run(until=0.5)
        assert inbox_c == []
