"""Deterministic random-number stream management.

Reproducibility is non-negotiable for a simulator: every run with the
same seed must produce the same event trace.  A single shared
``random.Random`` would make results depend on the *order* in which
components draw numbers, so instead each component asks the
:class:`RngRegistry` for a **named stream**.  Stream seeds are derived
from the master seed and the stream name, which means adding a new
component (a new stream) does not perturb the draws seen by existing
components.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory for named, independently-seeded random streams."""

    def __init__(self, master_seed: int = 0):
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same name always yields the same stream object, so stateful
        consumers (e.g. a MAC's backoff draw sequence) stay coherent.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        seed_material = f"{self._master_seed}:{name}".encode()
        digest = hashlib.sha256(seed_material).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def fork(self, salt: str) -> "RngRegistry":
        """Derive an independent registry (e.g. for a replication run)."""
        seed_material = f"{self._master_seed}/{salt}".encode()
        digest = hashlib.sha256(seed_material).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def namespace(self, prefix: str) -> "RngNamespace":
        """A view of this registry that prefixes every stream name.

        Namespacing is the sharded executor's determinism primitive: a
        component built inside namespace ``cell/<name>`` draws from
        stream ``cell/<name>/<stream>`` regardless of which process (or
        how many sibling components) exist around it.  Because stream
        seeds depend only on the master seed and the full name, a cell
        built under the same namespace produces byte-identical draws in
        a single-process run and in any shard of any partitioning.
        """
        return RngNamespace(self, prefix)

    def stream_names(self) -> list:
        """Names of all streams created so far (sorted, for diagnostics)."""
        return sorted(self._streams)


class RngNamespace:
    """A prefixed view onto an :class:`RngRegistry` (see
    :meth:`RngRegistry.namespace`).

    Exposes the same ``stream``/``namespace`` surface, so consumers can
    take either a registry or a namespace.  The underlying streams live
    in the parent registry (one flat, collision-free name space); the
    view itself holds no state.
    """

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: RngRegistry, prefix: str):
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        self._registry = registry
        self._prefix = prefix

    @property
    def master_seed(self) -> int:
        return self._registry.master_seed

    @property
    def prefix(self) -> str:
        return self._prefix

    def stream(self, name: str) -> random.Random:
        """The parent registry's stream for ``<prefix>/<name>``."""
        return self._registry.stream(f"{self._prefix}/{name}")

    def namespace(self, prefix: str) -> "RngNamespace":
        """A deeper namespace: ``<prefix>`` appended with a ``/``."""
        return RngNamespace(self._registry, f"{self._prefix}/{prefix}")
