"""Tests for the Michael MIC and its countermeasures."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SecurityError
from repro.security.michael import MichaelCountermeasures, michael

KEY = bytes(range(8))


class TestMichael:
    def test_deterministic(self):
        assert michael(KEY, b"data") == michael(KEY, b"data")

    def test_mic_is_8_bytes(self):
        assert len(michael(KEY, b"anything at all")) == 8

    @given(st.binary(max_size=200), st.binary(max_size=200))
    def test_data_sensitivity(self, a, b):
        if a != b:
            assert michael(KEY, a) != michael(KEY, b) or a == b

    def test_key_sensitivity(self):
        other = bytes(range(1, 9))
        assert michael(KEY, b"payload") != michael(other, b"payload")

    def test_single_bit_flip_changes_mic(self):
        data = bytearray(b"some protected data")
        original = michael(KEY, bytes(data))
        data[3] ^= 0x01
        assert michael(KEY, bytes(data)) != original

    def test_empty_data(self):
        assert len(michael(KEY, b"")) == 8

    def test_wrong_key_size_rejected(self):
        with pytest.raises(SecurityError):
            michael(b"short", b"data")


class TestCountermeasures:
    def test_single_failure_no_trigger(self):
        cm = MichaelCountermeasures()
        assert not cm.mic_failure(now=0.0)
        assert cm.usable(1.0)

    def test_two_failures_within_window_trigger(self):
        cm = MichaelCountermeasures(window=60.0, blackout=60.0)
        cm.mic_failure(now=0.0)
        assert cm.mic_failure(now=30.0)
        assert not cm.usable(now=31.0)
        assert cm.usable(now=91.0)
        assert cm.invocations == 1

    def test_failures_outside_window_do_not_trigger(self):
        cm = MichaelCountermeasures(window=60.0)
        cm.mic_failure(now=0.0)
        assert not cm.mic_failure(now=120.0)

    def test_rate_limit_one_probe_per_blackout(self):
        """The property that bounds chopchop: each pair of probes costs
        a full blackout."""
        cm = MichaelCountermeasures(window=60.0, blackout=60.0)
        cm.mic_failure(now=0.0)
        cm.mic_failure(now=1.0)      # trigger
        assert not cm.usable(now=30.0)
        cm.mic_failure(now=61.0)
        cm.mic_failure(now=62.0)     # trigger again
        assert cm.invocations == 2
