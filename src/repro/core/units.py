"""Unit helpers: time, data rate, and radio power conversions.

The simulator keeps all quantities in SI base units internally:

* time in **seconds** (floats; microsecond-scale protocol timing is well
  within double precision),
* data rates in **bits per second**,
* power in **watts** (with dBm helpers, since radio budgets are quoted
  in dBm),
* distances in **meters**.

These helpers exist so that protocol code reads like the standards
documents it implements (``MICROSECONDS``, ``mbps``, ``dbm_to_watts``)
instead of sprinkling magic scale factors.
"""

from __future__ import annotations

import math

# --- time ------------------------------------------------------------------

NANOSECONDS = 1e-9
MICROSECONDS = 1e-6
MILLISECONDS = 1e-3
SECONDS = 1.0

#: Speed of light in vacuum (m/s); used for propagation delay.
SPEED_OF_LIGHT = 299_792_458.0


def usec(value: float) -> float:
    """Convert a value in microseconds to seconds."""
    return value * MICROSECONDS


def msec(value: float) -> float:
    """Convert a value in milliseconds to seconds."""
    return value * MILLISECONDS


# --- data rates -------------------------------------------------------------

def kbps(value: float) -> float:
    """Convert kilobits per second to bits per second."""
    return value * 1e3


def mbps(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return value * 1e6


def gbps(value: float) -> float:
    """Convert gigabits per second to bits per second."""
    return value * 1e9


def to_mbps(bits_per_second: float) -> float:
    """Express a rate in megabits per second (for reporting)."""
    return bits_per_second / 1e6


def transmission_time(size_bits: int, rate_bps: float) -> float:
    """Time in seconds to clock ``size_bits`` onto the air at ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    if size_bits < 0:
        raise ValueError(f"size must be non-negative, got {size_bits}")
    return size_bits / rate_bps


# --- power ------------------------------------------------------------------

def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 10.0 ** (dbm / 10.0) / 1000.0


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm.

    Zero (or negative) power maps to ``-inf`` dBm, which propagates
    correctly through link-budget comparisons.
    """
    if watts <= 0.0:
        return -math.inf
    return 10.0 * math.log10(watts * 1000.0)


def db_to_linear(db: float) -> float:
    """Convert a dB ratio to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear ratio to dB; non-positive ratios map to -inf."""
    if ratio <= 0.0:
        return -math.inf
    return 10.0 * math.log10(ratio)


# --- thermal noise -----------------------------------------------------------

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23

#: Standard noise reference temperature (K).
T0_KELVIN = 290.0


def thermal_noise_watts(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise floor ``kTB`` scaled by a receiver noise figure.

    ``bandwidth_hz`` is the receiver bandwidth; the classic 20 MHz 802.11
    channel at a 7 dB noise figure gives roughly -94 dBm.
    """
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    return BOLTZMANN * T0_KELVIN * bandwidth_hz * db_to_linear(noise_figure_db)


def frequency_to_wavelength(frequency_hz: float) -> float:
    """Wavelength in meters for a carrier frequency in Hz."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return SPEED_OF_LIGHT / frequency_hz
