"""WiMAX (IEEE 802.16): point-to-multipoint metropolitan access.

The source text (§2.3, Fig 1.7) describes WiMAX as a scheduled,
point-to-multipoint MAC that "can transfer around 70 Mb/s over a
distance of 50 km to thousands of users from a single base station",
operating in two bands:

* **2–11 GHz, non-line-of-sight** — reaches indoor subscribers,
* **10–66 GHz, line-of-sight** — backhaul between towers.

Unlike 802.11's contention MAC, 802.16 is a **scheduled TDD frame**:
every 5 ms the base station grants downlink/uplink slots, so there are
no collisions — capacity is divided, not fought over.  Each subscriber
runs at the modulation its SNR supports (the standard's QPSK→64-QAM
ladder), so distant subscribers consume more airtime per byte — the
effect the distance sweep in experiment E7 shows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..core.engine import PeriodicTask, Simulator
from ..core.errors import ConfigurationError, LinkError
from ..core.stats import Counter
from ..core.topology import Position
from ..core.units import (
    dbm_to_watts,
    thermal_noise_watts,
    watts_to_dbm,
)
from ..phy.propagation import FreeSpace, LogDistance, PropagationModel

FRAME_TIME = 5e-3
#: Fraction of the TDD frame granted to the downlink.
DL_FRACTION = 2.0 / 3.0
#: MAC/PHY framing efficiency (preambles, maps, FCH, guard symbols).
FRAMING_EFFICIENCY = 0.8


class WimaxBand(Enum):
    """The two 802.16 operating regimes."""

    NLOS = "2-11 GHz NLOS"
    LOS = "10-66 GHz LOS"


#: Burst profiles: (name, spectral efficiency b/s/Hz, required SNR dB).
BURST_PROFILES = (
    ("QPSK-1/2", 1.0, 6.0),
    ("QPSK-3/4", 1.5, 8.5),
    ("16QAM-1/2", 2.0, 11.5),
    ("16QAM-3/4", 3.0, 15.0),
    ("64QAM-2/3", 4.0, 19.0),
    ("64QAM-3/4", 4.5, 21.0),
)


@dataclass
class SubscriberStation:
    """One customer endpoint."""

    name: str
    position: Position
    line_of_sight: bool = False
    counters: Counter = field(default_factory=Counter)
    #: Bytes waiting for downlink delivery (filled by offer_downlink).
    backlog_bytes: int = 0
    delivered_bytes: int = 0

    def offer_downlink(self, size_bytes: int) -> None:
        self.backlog_bytes += size_bytes


class WimaxBaseStation:
    """A base station scheduling one TDD channel."""

    def __init__(self, sim: Simulator, position: Position,
                 band: WimaxBand = WimaxBand.NLOS,
                 channel_bandwidth_hz: float = 20e6,
                 tx_power_dbm: float = 43.0, antenna_gain_db: float = 16.0,
                 subscriber_gain_db: float = 6.0,
                 noise_figure_db: float = 7.0):
        self.sim = sim
        self.position = position
        self.band = band
        self.channel_bandwidth_hz = channel_bandwidth_hz
        self.tx_power_dbm = tx_power_dbm
        self.antenna_gain_db = antenna_gain_db
        self.subscriber_gain_db = subscriber_gain_db
        self.noise_watts = thermal_noise_watts(channel_bandwidth_hz,
                                               noise_figure_db)
        self.subscribers: List[SubscriberStation] = []
        self.counters = Counter()
        self._frame_task: Optional[PeriodicTask] = None
        self._rr_index = 0
        if band == WimaxBand.NLOS:
            # 3.5 GHz with a suburban path-loss exponent.
            self._propagation: PropagationModel = LogDistance(
                3.5e9, exponent=2.5, reference_distance=100.0)
        else:
            # 28 GHz free space; usable only with line of sight.
            self._propagation = FreeSpace(28e9, min_distance=10.0)

    # --- membership ------------------------------------------------------------

    def attach(self, subscriber: SubscriberStation) -> None:
        if self.band == WimaxBand.LOS and not subscriber.line_of_sight:
            raise LinkError(
                f"{subscriber.name}: the 10-66 GHz band requires line of "
                "sight to the base station")
        if self.link_profile(subscriber) is None:
            raise LinkError(
                f"{subscriber.name} is beyond the coverage of this BS")
        self.subscribers.append(subscriber)

    # --- link budget -------------------------------------------------------------

    def snr_db(self, subscriber: SubscriberStation) -> float:
        loss = self._propagation.path_loss_db(self.position,
                                              subscriber.position)
        rx_dbm = (self.tx_power_dbm + self.antenna_gain_db
                  + self.subscriber_gain_db - loss)
        return rx_dbm - watts_to_dbm(self.noise_watts)

    def link_profile(self, subscriber: SubscriberStation
                     ) -> Optional[tuple]:
        """Best burst profile the subscriber's SNR supports."""
        snr = self.snr_db(subscriber)
        best = None
        for profile in BURST_PROFILES:
            if snr >= profile[2]:
                best = profile
        return best

    def peak_rate_bps(self) -> float:
        """Channel capacity at the top burst profile (the '70 Mb/s')."""
        top_efficiency = BURST_PROFILES[-1][1]
        return (self.channel_bandwidth_hz * top_efficiency
                * FRAMING_EFFICIENCY)

    def max_range_m(self, upper_bound: float = 100_000.0) -> float:
        """Farthest distance the lowest burst profile still decodes."""
        required = BURST_PROFILES[0][2]
        low, high = 100.0, upper_bound
        probe = SubscriberStation("probe", Position(high, 0, 0))
        if self.snr_db(probe) >= required:
            return high
        for _ in range(60):
            mid = (low + high) / 2.0
            probe = SubscriberStation("probe", Position(mid, 0, 0))
            if self.snr_db(probe) >= required:
                low = mid
            else:
                high = mid
        return low

    # --- the TDD frame scheduler ---------------------------------------------------

    def start(self) -> None:
        if self._frame_task is None:
            self._frame_task = PeriodicTask(self.sim, FRAME_TIME,
                                            self._run_frame)

    def stop(self) -> None:
        if self._frame_task is not None:
            self._frame_task.cancel()
            self._frame_task = None

    def _run_frame(self) -> None:
        """Grant the DL subframe's symbols round-robin among backlogged
        subscribers, each at its own burst profile."""
        backlogged = [ss for ss in self.subscribers if ss.backlog_bytes > 0]
        self.counters.incr("frames")
        if not backlogged:
            return
        dl_symbol_time = FRAME_TIME * DL_FRACTION * FRAMING_EFFICIENCY
        share = dl_symbol_time / len(backlogged)
        start = self._rr_index % len(backlogged)
        ordered = backlogged[start:] + backlogged[:start]
        self._rr_index += 1
        for subscriber in ordered:
            profile = self.link_profile(subscriber)
            if profile is None:
                subscriber.counters.incr("out_of_coverage_frames")
                continue
            _name, efficiency, _snr = profile
            rate = self.channel_bandwidth_hz * efficiency
            capacity_bytes = int(rate * share / 8)
            granted = min(capacity_bytes, subscriber.backlog_bytes)
            subscriber.backlog_bytes -= granted
            subscriber.delivered_bytes += granted
            subscriber.counters.incr("granted_bytes", granted)
            self.counters.incr("dl_bytes", granted)
