"""TKIP — the Temporal Key Integrity Protocol (WPA).

TKIP wraps the WEP hardware path with (source text §5.2):

* a **per-packet key**: a two-phase mixing function turns the 128-bit
  temporal key, the transmitter address, and a 48-bit packet sequence
  counter (TSC) into a fresh RC4 key for every frame — "radically more
  secure than the fixed key used in the WEP system",
* the **Michael** MIC over the plaintext (plus the WEP ICV retained for
  hardware compatibility),
* **TSC replay enforcement**: receivers drop frames whose counter does
  not increase.

Substitution note (documented in DESIGN.md): the reference TKIP mixing
function is an S-box Feistel network; we implement the same two-phase
structure (phase 1 over TK/TA/high-TSC cached across 65536 frames,
phase 2 over low-TSC per frame, first RC4 key bytes derived from the
TSC with the bit-5 defence against weak IVs) but use SHA-1 as the
mixing primitive.  Every property the experiments measure — per-packet
key freshness, replay protection, countermeasure rate-limiting, frame
overhead — is preserved.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

from ..core.errors import IntegrityError, ReplayError, SecurityError
from ..mac.fcs import crc32
from .michael import MIC_LEN, MichaelCountermeasures, michael
from .rc4 import crypt as rc4_crypt

TSC_LEN = 6
ICV_LEN = 4
#: Per-frame overhead: TSC header (6, stands in for IV+extended IV) +
#: Michael MIC (8) + ICV (4).
TKIP_OVERHEAD = TSC_LEN + MIC_LEN + ICV_LEN

TK_LEN = 16
MIC_KEY_LEN = 8


def phase1_mix(temporal_key: bytes, transmitter: bytes,
               tsc_high: int) -> bytes:
    """Phase 1: mix TK, TA and the high 32 bits of the TSC.

    Recomputed only when the high counter changes (every 65536 frames),
    exactly like the reference implementation caches its P1K.
    """
    if len(temporal_key) != TK_LEN:
        raise SecurityError(f"temporal key must be 16 bytes")
    if len(transmitter) != 6:
        raise SecurityError("transmitter address must be 6 bytes")
    material = temporal_key + transmitter + tsc_high.to_bytes(4, "big")
    return hashlib.sha1(b"tkip-phase1" + material).digest()[:10]


def phase2_mix(phase1: bytes, temporal_key: bytes, tsc_low: int) -> bytes:
    """Phase 2: produce the 16-byte per-packet RC4 key.

    The first three bytes are derived from the low TSC with the
    standard's bit-masking defence (byte1 = (byte0 | 0x20) & 0x7f)
    that makes FMS-weak IV classes unreachable.
    """
    tsc0 = (tsc_low >> 8) & 0xFF
    tsc1 = ((tsc_low >> 8) | 0x20) & 0x7F
    tsc2 = tsc_low & 0xFF
    material = phase1 + temporal_key + tsc_low.to_bytes(2, "big")
    tail = hashlib.sha1(b"tkip-phase2" + material).digest()[:13]
    return bytes([tsc0, tsc1, tsc2]) + tail


class TkipCipher:
    """Seal/open TKIP-protected frame bodies.

    One instance per direction of a link (the TSC is a transmitter
    counter).  ``mic_key`` should differ per direction, as the real
    PTK's Michael keys do.
    """

    def __init__(self, temporal_key: bytes, mic_key: bytes,
                 transmitter: bytes):
        if len(temporal_key) != TK_LEN:
            raise SecurityError("temporal key must be 16 bytes")
        if len(mic_key) != MIC_KEY_LEN:
            raise SecurityError("Michael key must be 8 bytes")
        self.temporal_key = temporal_key
        self.mic_key = mic_key
        self.transmitter = transmitter
        self._tsc = 0
        self._phase1: Optional[bytes] = None
        self._phase1_high: Optional[int] = None
        self._last_rx_tsc = -1
        self.countermeasures = MichaelCountermeasures()

    # --- key mixing ------------------------------------------------------------

    def _per_packet_key(self, tsc: int) -> bytes:
        tsc_high, tsc_low = tsc >> 16, tsc & 0xFFFF
        if self._phase1_high != tsc_high:
            self._phase1 = phase1_mix(self.temporal_key, self.transmitter,
                                      tsc_high)
            self._phase1_high = tsc_high
        assert self._phase1 is not None
        return phase2_mix(self._phase1, self.temporal_key, tsc_low)

    # --- seal / open ------------------------------------------------------------

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encapsulate: TSC || RC4_ppk(plaintext || MIC || ICV)."""
        self._tsc += 1
        if self._tsc >= 1 << 48:
            raise SecurityError("TSC exhausted; rekey required")
        tsc = self._tsc
        mic = michael(self.mic_key, plaintext)
        protected = plaintext + mic
        icv = crc32(protected).to_bytes(4, "little")
        key = self._per_packet_key(tsc)
        return tsc.to_bytes(TSC_LEN, "big") + rc4_crypt(key, protected + icv)

    def decrypt(self, body: bytes, now: float = 0.0) -> bytes:
        """Decapsulate with replay, ICV, MIC and countermeasure checks."""
        if len(body) < TKIP_OVERHEAD:
            raise SecurityError(f"TKIP body too short: {len(body)}")
        if not self.countermeasures.usable(now):
            raise SecurityError("TKIP countermeasures active; link disabled")
        tsc = int.from_bytes(body[:TSC_LEN], "big")
        if tsc <= self._last_rx_tsc:
            raise ReplayError(
                f"TSC replay: {tsc} <= {self._last_rx_tsc}")
        opened = rc4_crypt(self._per_packet_key(tsc), body[TSC_LEN:])
        protected, icv = opened[:-ICV_LEN], opened[-ICV_LEN:]
        if crc32(protected).to_bytes(4, "little") != icv:
            # ICV failures do NOT trigger Michael countermeasures (they
            # indicate noise/WEP-layer damage, handled silently).
            raise IntegrityError("TKIP ICV check failed")
        plaintext, mic = protected[:-MIC_LEN], protected[-MIC_LEN:]
        if michael(self.mic_key, plaintext) != mic:
            self.countermeasures.mic_failure(now)
            raise IntegrityError("Michael MIC failure")
        self._last_rx_tsc = tsc
        return plaintext

    @property
    def tsc(self) -> int:
        return self._tsc


def make_link_pair(temporal_key: bytes, mic_key_tx: bytes,
                   mic_key_rx: bytes, addr_a: bytes, addr_b: bytes
                   ) -> Tuple[TkipCipher, TkipCipher]:
    """Ciphers for the two directions of a link A->B / B->A."""
    return (TkipCipher(temporal_key, mic_key_tx, addr_a),
            TkipCipher(temporal_key, mic_key_rx, addr_b))
