"""Bluetooth (IEEE 802.15.1): piconets and scatternets.

A piconet (source text §2.1) is a master and up to seven active slaves
on a TDD slot structure: 625 µs slots, the master transmitting in
even-numbered slots and the addressed slave answering in the following
odd slot(s).  Multi-slot packets (DH1/DH3/DH5) trade latency for
efficiency; fully loaded, the asymmetric DH5 profile yields the
~720 kb/s the text quotes.

A scatternet (Fig 1.2) joins piconets through a **bridge** node that is
a slave in several piconets (master in at most one) and time-shares its
radio between them, relaying queued traffic across.

The model is slot-accurate but abstracts frequency hopping (each
piconet's hop sequence makes inter-piconet collisions rare; we model
piconets as interference-free, which is the standard analytical
assumption) and models range classes (1/2/3 → 100/10/1 m) as a hard
delivery limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional, Tuple
from collections import deque

from ..core.engine import Simulator
from ..core.errors import ConfigurationError, ProtocolError
from ..core.stats import Counter
from ..core.topology import Position

SLOT_TIME = 625e-6
MAX_ACTIVE_SLAVES = 7


class DeviceClass(Enum):
    """Bluetooth power classes and their nominal ranges."""

    CLASS1 = 100.0  # 100 mW
    CLASS2 = 10.0   # 2.5 mW (the common one)
    CLASS3 = 1.0    # 1 mW

    @property
    def range_m(self) -> float:
        return self.value


@dataclass(frozen=True)
class PacketType:
    """An ACL data packet type: slots occupied and payload carried."""

    name: str
    slots: int
    payload_bytes: int


DH1 = PacketType("DH1", 1, 27)
DH3 = PacketType("DH3", 3, 183)
DH5 = PacketType("DH5", 5, 339)
#: The single-slot NULL/POLL exchange when a peer has nothing to send.
POLL = PacketType("POLL", 1, 0)
#: HV3 voice packet: 30 bytes every 6th slot pair-wise = a 64 kb/s
#: full-duplex voice channel (the cordless-headset payload).
HV3 = PacketType("HV3", 1, 30)
#: An HV3 SCO link reserves one slot pair out of every three.
HV3_INTERVAL_PAIRS = 3

#: Receive callback: (source_name, payload) -> None.
BtReceiveHook = Callable[[str, bytes], None]


class BluetoothDevice:
    """A Bluetooth node; roles are assigned by piconet membership."""

    def __init__(self, name: str, position: Position = Position(),
                 device_class: DeviceClass = DeviceClass.CLASS2):
        self.name = name
        self.position = position
        self.device_class = device_class
        self.counters = Counter()
        self._receive_hook: Optional[BtReceiveHook] = None
        #: Piconets this device belongs to (scatternet membership).
        self.piconets: List["Piconet"] = []
        #: The piconet currently holding the radio (scatternet switching).
        self.active_piconet: Optional["Piconet"] = None

    def on_receive(self, hook: BtReceiveHook) -> None:
        self._receive_hook = hook

    def deliver(self, source: str, payload: bytes) -> None:
        self.counters.incr("rx_packets")
        self.counters.incr("rx_bytes", len(payload))
        if self._receive_hook is not None:
            self._receive_hook(source, payload)

    def available_for(self, piconet: "Piconet") -> bool:
        """Is the radio listening in this piconet right now?"""
        if len(self.piconets) <= 1:
            return True
        return self.active_piconet is piconet


class Piconet:
    """One master and up to seven active slaves on a shared TDD clock."""

    def __init__(self, sim: Simulator, master: BluetoothDevice,
                 packet_type: PacketType = DH5):
        self.sim = sim
        self.master = master
        self.packet_type = packet_type
        self.slaves: List[BluetoothDevice] = []
        self.counters = Counter()
        # Master-side downlink queues and slave-side uplink queues.
        self._downlink: Dict[str, Deque[bytes]] = {}
        self._uplink: Dict[str, Deque[bytes]] = {}
        self._poll_index = 0
        self._pair_index = 0
        self._running = False
        #: SCO voice links: slave name -> slave (HV3, every 3rd pair).
        self._sco_links: Dict[str, BluetoothDevice] = {}
        master.piconets.append(self)
        if master.active_piconet is None:
            master.active_piconet = self

    # --- membership ------------------------------------------------------------

    def add_slave(self, slave: BluetoothDevice) -> None:
        if len(self.slaves) >= MAX_ACTIVE_SLAVES:
            raise ConfigurationError(
                f"piconet already has {MAX_ACTIVE_SLAVES} active slaves")
        if slave is self.master:
            raise ConfigurationError("master cannot be its own slave")
        for piconet in slave.piconets:
            if piconet.master is slave:
                if self.master is slave:
                    raise ConfigurationError(
                        "a device may be master of only one piconet")
        self.slaves.append(slave)
        self._downlink[slave.name] = deque()
        self._uplink[slave.name] = deque()
        slave.piconets.append(self)
        if slave.active_piconet is None:
            slave.active_piconet = self

    def _in_range(self, a: BluetoothDevice, b: BluetoothDevice) -> bool:
        limit = min(a.device_class.range_m, b.device_class.range_m)
        return a.position.distance_to(b.position) <= limit

    # --- SCO voice links ----------------------------------------------------

    def add_sco_link(self, slave: BluetoothDevice) -> None:
        """Reserve an HV3 voice channel to ``slave``: one slot pair out
        of every three carries 30 bytes each way (64 kb/s full duplex),
        and is never available to ACL data.  At most one SCO link here
        (real piconets allow up to three HV3 links, which would consume
        the entire TDD schedule)."""
        if slave not in self.slaves:
            raise ProtocolError(f"{slave.name} is not a slave here")
        if self._sco_links:
            raise ConfigurationError(
                "this model supports one SCO link per piconet")
        self._sco_links[slave.name] = slave

    def remove_sco_link(self, slave: BluetoothDevice) -> None:
        self._sco_links.pop(slave.name, None)

    @property
    def sco_rate_bps(self) -> float:
        """The voice rate of an HV3 link: 30 B per 6 slots = 64 kb/s."""
        return HV3.payload_bytes * 8 / (HV3_INTERVAL_PAIRS * 2 * SLOT_TIME)

    def _run_sco_pair(self, slave: BluetoothDevice) -> None:
        """One reserved voice slot pair: HV3 down, HV3 up."""
        voice = bytes(HV3.payload_bytes)
        if self._in_range(self.master, slave):
            if slave.available_for(self):
                self.sim.schedule(SLOT_TIME, slave.deliver,
                                  self.master.name, voice)
                slave.counters.incr("voice_bytes", HV3.payload_bytes)
            if self.master.available_for(self):
                self.sim.schedule(2 * SLOT_TIME, self.master.deliver,
                                  slave.name, voice)
                self.master.counters.incr("voice_bytes", HV3.payload_bytes)
        self.counters.incr("sco_pairs")

    # --- traffic ------------------------------------------------------------

    def send(self, source: BluetoothDevice, destination: BluetoothDevice,
             payload: bytes) -> None:
        """Queue a payload; must be master<->slave within this piconet."""
        if source is self.master:
            if destination not in self.slaves:
                raise ProtocolError(
                    f"{destination.name} is not a slave of this piconet")
            self._downlink[destination.name].append(payload)
        elif source in self.slaves:
            if destination is not self.master:
                raise ProtocolError(
                    "slaves can only talk to the master; use the master "
                    "to relay slave-to-slave traffic")
            self._uplink[source.name].append(payload)
        else:
            raise ProtocolError(f"{source.name} is not in this piconet")

    # --- the TDD engine ------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(0.0, self._slot_pair)

    def stop(self) -> None:
        self._running = False

    def _next_slave(self) -> Optional[BluetoothDevice]:
        """Round-robin over slaves (pure round-robin polling)."""
        if not self.slaves:
            return None
        slave = self.slaves[self._poll_index % len(self.slaves)]
        self._poll_index += 1
        return slave

    def _slot_pair(self) -> None:
        """Run one master->slave / slave->master exchange, re-arm."""
        if not self._running:
            return
        self._pair_index += 1
        if self._sco_links and \
                self._pair_index % HV3_INTERVAL_PAIRS == 0:
            # This pair is reserved for the voice link; ACL data waits.
            sco_slave = next(iter(self._sco_links.values()))
            self._run_sco_pair(sco_slave)
            self.sim.schedule(2 * SLOT_TIME, self._slot_pair)
            return
        slave = self._next_slave()
        if slave is None:
            self.sim.schedule(2 * SLOT_TIME, self._slot_pair)
            return
        down_queue = self._downlink[slave.name]
        up_queue = self._uplink[slave.name]
        master_available = self.master.available_for(self)
        slave_available = slave.available_for(self)
        in_range = self._in_range(self.master, slave)

        # Master slot(s): data if queued, else a POLL.
        down_type = self.packet_type if down_queue else POLL
        down_slots = down_type.slots
        if down_queue and master_available:
            chunk = down_queue.popleft()
            if slave_available and in_range:
                self.sim.schedule(down_slots * SLOT_TIME, slave.deliver,
                                  self.master.name, chunk)
                self.counters.incr("downlink_packets")
                self.counters.incr("downlink_bytes", len(chunk))
            else:
                # Absent bridge or out of range: retransmit later.
                down_queue.appendleft(chunk)
                self.counters.incr("downlink_misses")
        # Slave slot(s): data if queued, else a NULL.
        up_type = self.packet_type if up_queue else POLL
        up_slots = up_type.slots
        if up_queue and slave_available:
            chunk = up_queue.popleft()
            if master_available and in_range:
                self.sim.schedule((down_slots + up_slots) * SLOT_TIME,
                                  self.master.deliver, slave.name, chunk)
                self.counters.incr("uplink_packets")
                self.counters.incr("uplink_bytes", len(chunk))
            else:
                up_queue.appendleft(chunk)
                self.counters.incr("uplink_misses")
        self.counters.incr("slot_pairs")
        self.sim.schedule((down_slots + up_slots) * SLOT_TIME,
                          self._slot_pair)

    # --- capacity helpers -------------------------------------------------------

    def max_asymmetric_rate_bps(self) -> float:
        """Peak one-direction rate with this packet type (single slave)."""
        pair_time = (self.packet_type.slots + POLL.slots) * SLOT_TIME
        return self.packet_type.payload_bytes * 8 / pair_time

    def queue_payload(self, destination: BluetoothDevice,
                      payload: bytes, chunk: Optional[int] = None) -> int:
        """Fragment a large payload into packet-type-sized chunks from the
        master; returns the number of chunks queued."""
        size = chunk if chunk is not None else self.packet_type.payload_bytes
        count = 0
        for offset in range(0, len(payload), size):
            self.send(self.master, destination, payload[offset:offset + size])
            count += 1
        return count


class ScatternetBridge:
    """Time-shares a device between two piconets and relays traffic.

    The bridge listens ``dwell`` seconds in each piconet alternately
    (its radio can only follow one hop sequence at a time).  Payloads it
    receives in one piconet destined beyond it are re-queued into the
    other — slave->master or master->slave as its role there dictates.
    """

    def __init__(self, sim: Simulator, device: BluetoothDevice,
                 piconet_a: Piconet, piconet_b: Piconet,
                 dwell: float = 20 * SLOT_TIME):
        if piconet_a not in device.piconets or \
                piconet_b not in device.piconets:
            raise ConfigurationError(
                f"{device.name} must belong to both piconets")
        self.sim = sim
        self.device = device
        self.piconet_a = piconet_a
        self.piconet_b = piconet_b
        self.dwell = dwell
        self.relayed = 0
        self._forward: Dict[str, Tuple[Piconet, BluetoothDevice]] = {}
        device.on_receive(self._bridge_receive)
        device.active_piconet = piconet_a
        sim.schedule(dwell, self._switch)

    def add_route(self, source_name: str, via: Piconet,
                  destination: BluetoothDevice) -> None:
        """Traffic from ``source_name`` is forwarded into ``via`` toward
        ``destination``."""
        self._forward[source_name] = (via, destination)

    def _switch(self) -> None:
        current = self.device.active_piconet
        self.device.active_piconet = (
            self.piconet_b if current is self.piconet_a else self.piconet_a)
        self.sim.schedule(self.dwell, self._switch)

    def _bridge_receive(self, source: str, payload: bytes) -> None:
        route = self._forward.get(source)
        if route is None:
            return
        piconet, destination = route
        piconet.send(self.device, destination, payload)
        self.relayed += 1
