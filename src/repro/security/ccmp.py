"""CCMP — AES in CCM mode (WPA2).

WPA2's mandatory cipher: AES-128 in Counter mode with CBC-MAC (source
text §5.2: "the mandatory use of AES algorithms and the introduction of
CCMP ... as a replacement for TKIP").  Built entirely on the library's
own :class:`~repro.security.aes.Aes128`.

The CCM parameters follow 802.11i: an 8-byte MIC (M=8), 2-byte length
field (L=2), and a 13-byte nonce of priority || transmitter address ||
48-bit packet number (PN).  The PN doubles as the replay counter.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import IntegrityError, ReplayError, SecurityError
from .aes import Aes128, BLOCK_SIZE

MIC_LEN = 8       # M parameter
LENGTH_LEN = 2    # L parameter
NONCE_LEN = 15 - LENGTH_LEN
PN_LEN = 6
#: Per-frame overhead: PN header (6, stands in for the CCMP header) + MIC.
CCMP_OVERHEAD = PN_LEN + MIC_LEN


def _xor_block(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _cbc_mac(aes: Aes128, nonce: bytes, aad: bytes, plaintext: bytes) -> bytes:
    """CCM authentication: CBC-MAC over B0 | AAD blocks | payload blocks."""
    flags = 0x40 if aad else 0x00         # Adata bit
    flags |= ((MIC_LEN - 2) // 2) << 3    # M' field
    flags |= LENGTH_LEN - 1               # L' field
    b0 = bytes([flags]) + nonce + len(plaintext).to_bytes(LENGTH_LEN, "big")
    mac = aes.encrypt_block(b0)
    if aad:
        if len(aad) >= 0xFF00:
            raise SecurityError("AAD too long for the short encoding")
        encoded = len(aad).to_bytes(2, "big") + aad
        padding = (-len(encoded)) % BLOCK_SIZE
        encoded += bytes(padding)
        for offset in range(0, len(encoded), BLOCK_SIZE):
            mac = aes.encrypt_block(
                _xor_block(mac, encoded[offset:offset + BLOCK_SIZE]))
    padded = plaintext + bytes((-len(plaintext)) % BLOCK_SIZE)
    for offset in range(0, len(padded), BLOCK_SIZE):
        mac = aes.encrypt_block(
            _xor_block(mac, padded[offset:offset + BLOCK_SIZE]))
    return mac[:MIC_LEN]


def _ctr_crypt(aes: Aes128, nonce: bytes, data: bytes,
               counter_start: int) -> bytes:
    """CCM counter mode; counter 0 encrypts the MIC, payload starts at 1."""
    flags = LENGTH_LEN - 1
    output = bytearray()
    counter = counter_start
    for offset in range(0, len(data), BLOCK_SIZE):
        block = bytes([flags]) + nonce + counter.to_bytes(LENGTH_LEN, "big")
        pad = aes.encrypt_block(block)
        chunk = data[offset:offset + BLOCK_SIZE]
        output.extend(_xor_block(chunk, pad[:len(chunk)]))
        counter += 1
    return bytes(output)


def ccm_encrypt(key: bytes, nonce: bytes, aad: bytes,
                plaintext: bytes) -> bytes:
    """Generic CCM seal: ciphertext || encrypted MIC."""
    if len(nonce) != NONCE_LEN:
        raise SecurityError(f"nonce must be {NONCE_LEN} bytes")
    aes = Aes128(key)
    mic = _cbc_mac(aes, nonce, aad, plaintext)
    ciphertext = _ctr_crypt(aes, nonce, plaintext, counter_start=1)
    flags = LENGTH_LEN - 1
    a0 = bytes([flags]) + nonce + (0).to_bytes(LENGTH_LEN, "big")
    encrypted_mic = _xor_block(mic, aes.encrypt_block(a0)[:MIC_LEN])
    return ciphertext + encrypted_mic


def ccm_decrypt(key: bytes, nonce: bytes, aad: bytes, sealed: bytes) -> bytes:
    """Generic CCM open; raises :class:`IntegrityError` on MIC mismatch."""
    if len(nonce) != NONCE_LEN:
        raise SecurityError(f"nonce must be {NONCE_LEN} bytes")
    if len(sealed) < MIC_LEN:
        raise SecurityError("sealed data shorter than the MIC")
    aes = Aes128(key)
    ciphertext, encrypted_mic = sealed[:-MIC_LEN], sealed[-MIC_LEN:]
    plaintext = _ctr_crypt(aes, nonce, ciphertext, counter_start=1)
    flags = LENGTH_LEN - 1
    a0 = bytes([flags]) + nonce + (0).to_bytes(LENGTH_LEN, "big")
    mic = _xor_block(encrypted_mic, aes.encrypt_block(a0)[:MIC_LEN])
    if _cbc_mac(aes, nonce, aad, plaintext) != mic:
        raise IntegrityError("CCM MIC check failed")
    return plaintext


class CcmpCipher:
    """Seal/open CCMP-protected frame bodies for one link direction."""

    def __init__(self, temporal_key: bytes, transmitter: bytes,
                 priority: int = 0):
        if len(temporal_key) != 16:
            raise SecurityError("CCMP temporal key must be 16 bytes")
        if len(transmitter) != 6:
            raise SecurityError("transmitter address must be 6 bytes")
        self.temporal_key = temporal_key
        self.transmitter = transmitter
        self.priority = priority & 0xF
        self._pn = 0
        self._last_rx_pn = -1

    def _nonce(self, pn: int) -> bytes:
        return bytes([self.priority]) + self.transmitter \
            + pn.to_bytes(PN_LEN, "big")

    def encrypt(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encapsulate: PN || CCM(plaintext)."""
        self._pn += 1
        if self._pn >= 1 << 48:
            raise SecurityError("PN exhausted; rekey required")
        pn = self._pn
        sealed = ccm_encrypt(self.temporal_key, self._nonce(pn), aad,
                             plaintext)
        return pn.to_bytes(PN_LEN, "big") + sealed

    def decrypt(self, body: bytes, aad: bytes = b"") -> bytes:
        """Decapsulate with replay and MIC checks."""
        if len(body) < CCMP_OVERHEAD:
            raise SecurityError(f"CCMP body too short: {len(body)}")
        pn = int.from_bytes(body[:PN_LEN], "big")
        if pn <= self._last_rx_pn:
            raise ReplayError(f"PN replay: {pn} <= {self._last_rx_pn}")
        plaintext = ccm_decrypt(self.temporal_key, self._nonce(pn), aad,
                                body[PN_LEN:])
        self._last_rx_pn = pn
        return plaintext

    @property
    def pn(self) -> int:
        return self._pn
