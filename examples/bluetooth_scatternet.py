#!/usr/bin/env python3
"""The Fig 1.2 scatternet: two piconets joined by a bridge.

Piconet A: a phone (master) with a headset and a watch as slaves, plus
the bridge.  Piconet B: the bridge is the *master* of a second piconet
serving a printer.  A file sent by the phone crosses both piconets
through the bridge — "information could flow beyond the coverage area
of the single piconet".

Run:  python examples/bluetooth_scatternet.py
"""

from repro import Simulator
from repro.core.topology import Position
from repro.wpan.bluetooth import (
    BluetoothDevice,
    DH5,
    Piconet,
    ScatternetBridge,
)


def main() -> None:
    sim = Simulator(seed=5)

    phone = BluetoothDevice("phone", Position(0, 0, 0))
    piconet_a = Piconet(sim, phone, packet_type=DH5)
    for name, x in (("headset", 1.0), ("watch", 0.5)):
        piconet_a.add_slave(BluetoothDevice(name, Position(x, 0, 0)))
    bridge = BluetoothDevice("bridge", Position(5, 0, 0))
    piconet_a.add_slave(bridge)

    piconet_b = Piconet(sim, bridge, packet_type=DH5)  # bridge is master
    printer = BluetoothDevice("printer", Position(9, 0, 0))
    piconet_b.add_slave(printer)

    relay = ScatternetBridge(sim, bridge, piconet_a, piconet_b)
    relay.add_route("phone", via=piconet_b, destination=printer)

    print(f"piconet A: master={phone.name}, "
          f"slaves={[s.name for s in piconet_a.slaves]}")
    print(f"piconet B: master={bridge.name}, "
          f"slaves={[s.name for s in piconet_b.slaves]}")
    print(f"single-piconet peak: "
          f"{piconet_a.max_asymmetric_rate_bps() / 1e3:.0f} kb/s "
          "(the '720 Kbps' of the text)")

    piconet_a.start()
    piconet_b.start()

    document = bytes(120_000)  # a 120 KB print job
    chunks = piconet_a.queue_payload(bridge, document)
    print(f"\nphone prints a {len(document) // 1000} KB document "
          f"({chunks} DH5 chunks) via the bridge...")

    horizon = 6.0
    sim.run(until=horizon)

    relayed = printer.counters.get("rx_bytes")
    print(f"printer received {relayed} bytes "
          f"({relayed * 8 / horizon / 1e3:.0f} kb/s through the bridge; "
          f"bridge relayed {relay.relayed} packets)")
    print("note: relay rate < single-piconet rate — the bridge "
          "time-shares its radio between the two hop sequences")

    # Meanwhile, a call comes in: an SCO voice link to the headset
    # reserves every third slot pair of piconet A.
    headset = piconet_a.slaves[0]
    piconet_a.add_sco_link(headset)
    voice_start = sim.now
    sim.run(until=voice_start + 3.0)
    voice_rate = headset.counters.get("voice_bytes") * 8 / 3.0
    print(f"\nheadset voice link: {voice_rate / 1e3:.0f} kb/s "
          f"(HV3: one slot pair in three, nominal "
          f"{piconet_a.sco_rate_bps / 1e3:.0f} kb/s) — ACL data now "
          "shares the remaining two-thirds of the schedule")


if __name__ == "__main__":
    main()
