"""Legacy setup shim (the environment's setuptools predates PEP 660).

Also declares the optional compiled event-kernel
(``repro.core._ckernel``).  The extension is a pure accelerator — the
pure-Python kernel is the reference implementation and every feature
works without it — so the build must never be able to fail the install:
``OptionalBuildExt`` turns any compiler error (missing toolchain,
missing headers, exotic platform) into a warning and a pure-Python
install.  ``python tools/build_kernel.py`` is the convenience wrapper
for building it in place.
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """``build_ext`` that degrades to pure Python on any compile failure."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # toolchain absent entirely
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # this one extension failed to compile
            self._skip(exc)

    def _skip(self, exc):
        import warnings

        warnings.warn(
            "repro.core._ckernel failed to build (%s: %s); the simulator "
            "will use the pure-Python kernel. Results are identical, only "
            "slower." % (type(exc).__name__, exc))


setup(
    ext_modules=[
        Extension(
            "repro.core._ckernel",
            sources=["src/repro/core/_ckernel.c"],
            optional=True,
        ),
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
