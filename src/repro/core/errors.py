"""Exception hierarchy for the repro wireless simulation library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still distinguishing configuration mistakes from runtime protocol
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class SimulationError(ReproError):
    """The simulation kernel detected an inconsistent state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped simulator."""


class AssociationTimeoutError(SimulationError):
    """Stations failed to associate within the allotted simulated time.

    Raised by :func:`repro.scenarios.associate_all`; the message names
    every stuck station with its FSM state, and :attr:`stations` carries
    the station objects for programmatic inspection.
    """

    def __init__(self, message: str, stations=()):
        super().__init__(message)
        self.stations = list(stations)


class InvariantViolation(SimulationError):
    """A strict-mode runtime invariant check failed.

    Raised by :class:`repro.faults.InvariantChecker` when ``strict`` is
    set; carries the human-readable description of the violated
    invariant in the message.
    """


class ProtocolError(ReproError):
    """A protocol entity received input it cannot process."""


class FrameError(ProtocolError):
    """A MAC frame could not be serialized or parsed."""


class SecurityError(ReproError):
    """Base class for security subsystem failures."""


class IntegrityError(SecurityError):
    """An integrity check (ICV, MIC, FCS over plaintext) failed."""


class ReplayError(SecurityError):
    """A frame arrived with a stale sequence counter (replay window)."""


class AuthenticationError(SecurityError):
    """Authentication or key-handshake failure."""


class LinkError(ReproError):
    """A point-to-point link (IrDA, satellite) cannot be established."""
