"""Tests for management-frame bodies and IEs."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import FrameError
from repro.net.elements import (
    AssocRequestBody,
    AssocResponseBody,
    AuthBody,
    AUTH_OPEN_SYSTEM,
    BeaconBody,
    CAP_ESS,
    CAP_PRIVACY,
    STATUS_SUCCESS,
    decode_ies,
    encode_ie,
    find_ie,
)


class TestIes:
    def test_encode_decode_round_trip(self):
        raw = encode_ie(0, b"myssid") + encode_ie(1, b"\x02\x04\x0b\x16")
        elements = decode_ies(raw)
        assert find_ie(elements, 0) == b"myssid"
        assert find_ie(elements, 1) == b"\x02\x04\x0b\x16"
        assert find_ie(elements, 99) is None

    def test_truncated_ie_rejected(self):
        with pytest.raises(FrameError):
            decode_ies(b"\x00\x05ab")

    def test_too_long_payload_rejected(self):
        with pytest.raises(FrameError):
            encode_ie(0, b"x" * 256)

    @given(st.lists(st.tuples(st.integers(0, 255), st.binary(max_size=40)),
                    max_size=8))
    def test_multi_ie_round_trip(self, elements):
        raw = b"".join(encode_ie(eid, payload)
                       for eid, payload in elements)
        assert decode_ies(raw) == elements


class TestBeaconBody:
    def test_round_trip(self):
        body = BeaconBody(timestamp_us=123456, beacon_interval_tu=100,
                          capability=CAP_ESS | CAP_PRIVACY, ssid="home",
                          supported_rates_mbps=(1.0, 2.0, 5.5, 11.0),
                          channel=6)
        decoded = BeaconBody.decode(body.encode())
        assert decoded.ssid == "home"
        assert decoded.timestamp_us == 123456
        assert decoded.privacy
        assert decoded.channel == 6
        assert decoded.supported_rates_mbps == (1.0, 2.0, 5.5, 11.0)

    def test_no_privacy_bit(self):
        body = BeaconBody(0, 100, CAP_ESS, "open-net")
        assert not BeaconBody.decode(body.encode()).privacy

    def test_ssid_too_long_rejected(self):
        with pytest.raises(FrameError):
            BeaconBody(0, 100, 0, "x" * 33).encode()

    def test_missing_ssid_rejected(self):
        raw = bytes(12)  # fixed fields only, no IEs
        with pytest.raises(FrameError):
            BeaconBody.decode(raw)

    def test_utf8_ssid(self):
        body = BeaconBody(0, 100, 0, "café-network")
        assert BeaconBody.decode(body.encode()).ssid == "café-network"


class TestAuthBody:
    def test_round_trip(self):
        body = AuthBody(AUTH_OPEN_SYSTEM, sequence=1)
        decoded = AuthBody.decode(body.encode())
        assert decoded.algorithm == AUTH_OPEN_SYSTEM
        assert decoded.sequence == 1
        assert decoded.status == STATUS_SUCCESS

    def test_challenge_round_trip(self):
        body = AuthBody(1, 2, challenge=b"challenge-text")
        assert AuthBody.decode(body.encode()).challenge == b"challenge-text"

    def test_too_short_rejected(self):
        with pytest.raises(FrameError):
            AuthBody.decode(b"\x00\x00")


class TestAssocBodies:
    def test_request_round_trip(self):
        body = AssocRequestBody(capability=CAP_ESS, listen_interval=10,
                                ssid="the-net")
        decoded = AssocRequestBody.decode(body.encode())
        assert decoded.ssid == "the-net"
        assert decoded.listen_interval == 10

    def test_response_round_trip(self):
        body = AssocResponseBody(capability=CAP_ESS, status=0,
                                 association_id=7)
        decoded = AssocResponseBody.decode(body.encode())
        assert decoded.association_id == 7
        assert decoded.status == STATUS_SUCCESS

    def test_request_without_ssid_rejected(self):
        with pytest.raises(FrameError):
            AssocRequestBody.decode(bytes(4))
