"""The sharded executor: conservative-lookahead multi-process runs.

:func:`run_sharded` partitions a cell list (see
:mod:`repro.parallel.partition`), forks one worker process per shard,
and drives the workers through coordinator-paced **rounds**: each round
every shard receives a safe bound — the horizon capped by
``min(coupled source clock + lookahead)`` — injects the boundary
arrivals routed to it, runs its event loop to the bound, and fences
back its clock, event count and outbox.  Nothing a coupled source will
ever transmit can arrive before ``source clock + lookahead`` (the
lookahead *is* the minimum cross-shard propagation delay), so every
shard executes exactly the events a single global heap would have given
it, modulo the energy-faithful boundary contract documented in
:mod:`repro.parallel.shard`.

Determinism is layered:

* **Per-cell RNG namespacing** (:meth:`RngRegistry.namespace`): every
  component draws from ``cell/<name>/...`` streams whose seeds depend
  only on the master seed and the name — byte-identical draws in a
  single process and in any shard of any partitioning.  Per-*cell* (not
  per-shard) namespacing is deliberate: it is what makes the
  single-process-vs-sharded differential gate an exact byte comparison
  for decoupled partitions.
* **Deterministic addresses**: :meth:`CellBuild.address` carves each
  cell a block of locally-administered MACs from its *global* cell
  index, independent of shard placement and build order.
* **Pinned merge order**: boundary records merge by
  ``(time, shard, seq)`` everywhere — in the coordinator's round batch
  (audited by ``InvariantChecker.check_merge_order``) and in the
  canonical :class:`ArrivalLog`, whose SHA-1 is the two-runs-identical
  fingerprint CI byte-compares.

:func:`run_single` executes the same cell list on one kernel — the
differential reference, and the ``workers=1`` baseline for scaling
measurements.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import multiprocessing
from time import perf_counter
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.engine import Simulator
from ..core.errors import ConfigurationError, SimulationError
from ..core.trace import TraceLog
from ..faults.invariants import InvariantChecker
from ..mac.addresses import MacAddress
from ..phy.channel import Medium
from ..phy.propagation import PropagationModel
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.probes import Telemetry
from .partition import CellSpec, ShardPlan, partition_cells
from .shard import BoundaryRecord, ShardMedium

#: Base of the deterministic per-cell address blocks: locally
#: administered, with a per-cell 16-bit block index in octets 4-5 and
#: the device serial in the last two octets.  Block indices start at 1,
#: so the blocks can never collide with :func:`allocate_address`'s
#: low-serial range in mixed scenarios (< 65536 global devices).
_CELL_ADDRESS_BASE = 0x02_00_00_00_00_00


class CellBuild:
    """Build context handed to every :class:`CellSpec`'s builder.

    The builder must construct the cell's radios/MACs/traffic on
    :attr:`sim`/:attr:`medium`, draw randomness only from :attr:`rng`,
    take addresses only from :meth:`address`, and return a zero-argument
    stats collector.  Those three rules are the portability contract:
    they make the cell's behaviour a pure function of the master seed
    and the cell's own name/index, so the same cell is bit-identical in
    a single-process run and in any shard.
    """

    def __init__(self, sim: Simulator, medium: Medium, cell: CellSpec,
                 cell_index: int,
                 checker: Optional[InvariantChecker] = None):
        self.sim = sim
        self.medium = medium
        self.cell = cell
        self.cell_index = cell_index
        #: Sweeps this worker when ``check_invariants`` is on (watch
        #: meshes/extra MACs here); ``None`` otherwise.
        self.checker = checker
        self.rng = sim.rng.namespace(f"cell/{cell.name}")
        self._serial = itertools.count()

    def address(self) -> MacAddress:
        """Next address in this cell's deterministic block."""
        serial = next(self._serial)
        if serial >= (1 << 16):
            raise ConfigurationError(
                f"cell {self.cell.name!r} exhausted its 65536-address "
                f"block")
        return MacAddress(_CELL_ADDRESS_BASE
                          | ((self.cell_index + 1) << 16) | serial)


class ArrivalLog:
    """Canonical cross-shard activity log (JSONL, byte-comparable).

    Every float is serialized through ``repr`` (shortest round-trip
    form) and every object with sorted keys, so two runs of the same
    partition produce byte-identical logs — the CI determinism gate
    hashes exactly this text.
    """

    def __init__(self, header: Dict):
        self._lines: List[str] = [self._dump({"type": "header", **header})]

    @staticmethod
    def _dump(record: Dict) -> str:
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    def arrival(self, record: BoundaryRecord,
                dests: Sequence[int]) -> None:
        self._lines.append(self._dump({
            "type": "arrival", "time": repr(record.start_time),
            "shard": record.shard, "seq": record.seq,
            "sender": record.sender, "channel": record.channel,
            "power_watts": repr(record.power_watts),
            "duration": repr(record.duration),
            "dests": list(dests)}))

    def fence(self, round_index: int, shard: int, clock: float,
              events: int) -> None:
        self._lines.append(self._dump({
            "type": "fence", "round": round_index, "shard": shard,
            "clock": repr(clock), "events": events}))

    def final(self, shard: int, clock: float, events: int) -> None:
        self._lines.append(self._dump({
            "type": "final", "shard": shard, "clock": repr(clock),
            "events": events}))

    def to_jsonl(self) -> str:
        return "\n".join(self._lines) + "\n"

    def sha1(self) -> str:
        return hashlib.sha1(self.to_jsonl().encode()).hexdigest()


def _build_cells(sim: Simulator, medium: Medium,
                 cells: Sequence[CellSpec], indices: Sequence[int],
                 checker: Optional[InvariantChecker]
                 ) -> Dict[str, Callable[[], Dict]]:
    collectors = {}
    for cell, index in zip(cells, indices):
        collectors[cell.name] = cell.build(
            CellBuild(sim, medium, cell, index, checker))
    return collectors


def run_single(cells, *, seed: int, horizon: float,
               propagation_factory: Callable[[], PropagationModel],
               reception_floor_dbm: float = -110.0,
               propagation_delay: bool = True,
               exact: bool = True,
               check_invariants: bool = False,
               telemetry: bool = False,
               telemetry_interval: float = 0.05) -> Dict:
    """Run every cell on one kernel — the differential reference.

    ``propagation_factory`` (not a model instance) keeps the signature
    symmetric with :func:`run_sharded`, where each worker must build
    its own model; stateless models make the two bit-comparable.

    ``telemetry=True`` instruments the kernel, medium and radio fleet
    (see :mod:`repro.telemetry`) and adds ``telemetry_jsonl`` /
    ``telemetry_wall_jsonl`` streams to the result.  Sampler events
    ride the heap, so ``events`` grows — protocol outcomes do not.
    """
    ordered = tuple(sorted(cells, key=lambda cell: cell.name))
    sim = Simulator(seed=seed, trace=TraceLog(enabled=False))
    medium = Medium(sim, propagation_factory(),
                    reception_floor_dbm=reception_floor_dbm,
                    propagation_delay=propagation_delay, exact=exact)
    checker = None
    if check_invariants:
        checker = InvariantChecker(sim)
        checker.watch_medium(medium)
    collectors = _build_cells(sim, medium, ordered, range(len(ordered)),
                              checker)
    if checker is not None:
        checker.install()
    hub = Telemetry(sim, enabled=telemetry,
                    sample_interval=telemetry_interval)
    hub.instrument_kernel()
    hub.instrument_medium(medium)
    hub.instrument_radios(medium._radios)
    hub.install()
    sim.run(until=horizon)
    hub.finish()
    result = {
        "cells": {name: collectors[name]() for name in sorted(collectors)},
        "events": sim.events_executed,
    }
    if telemetry:
        result["telemetry_jsonl"] = hub.sim_jsonl()
        result["telemetry_wall_jsonl"] = hub.wall_jsonl()
    return result


def _worker_main(conn, shard_index: int, shard_cells, global_indices,
                 export_channels, seed: int, horizon: float,
                 propagation_factory, reception_floor_dbm: float,
                 propagation_delay: bool, exact: bool,
                 check_invariants: bool, telemetry: bool = False,
                 telemetry_interval: float = 0.05) -> None:
    """One shard's event loop, driven by coordinator messages.

    Protocol (worker side): after building, send ``("ready", shard)``;
    then for each ``("advance", bound, records)`` inject the records,
    run to the bound, and fence back
    ``("fence", shard, clock, events, outbox)``; on ``("finish",)``
    send ``("stats", shard, {cell: stats}, events, telemetry)`` —
    where ``telemetry`` is ``None`` or a ``(sim_jsonl, wall_jsonl)``
    pair of this shard's exported streams — and exit.  Any exception
    turns into ``("error", shard, message)``.

    With telemetry on, the worker instruments its own kernel/medium/
    radio fleet and additionally keeps per-shard round metrics in the
    sim stream (``parallel/advances``, ``parallel/boundary_injected``
    — both pure functions of the deterministic round schedule) and
    busy/idle wall seconds in the wall stream.
    """
    try:
        sim = Simulator(seed=seed, trace=TraceLog(enabled=False))
        medium = ShardMedium(sim, propagation_factory(),
                             reception_floor_dbm=reception_floor_dbm,
                             propagation_delay=propagation_delay,
                             exact=exact, shard=shard_index,
                             export_channels=export_channels)
        checker = None
        if check_invariants:
            checker = InvariantChecker(sim, shard=shard_index)
            checker.watch_medium(medium)
        collectors = _build_cells(sim, medium, shard_cells,
                                  global_indices, checker)
        if checker is not None:
            checker.install()
        hub = Telemetry(sim, enabled=telemetry,
                        sample_interval=telemetry_interval)
        hub.instrument_kernel()
        hub.instrument_medium(medium)
        hub.instrument_radios(medium._radios)
        # Disabled registry hands back null metrics: the per-round
        # inc() calls below are no-ops in benchmark posture.
        advances = hub.registry.counter("parallel", "advances",
                                        shard=shard_index)
        injected = hub.registry.counter("parallel", "boundary_injected",
                                        shard=shard_index)
        hub.sampler.add("parallel", "outbox_depth",
                        lambda: float(len(medium.outbox)),
                        shard=shard_index)
        hub.install()
        busy = 0.0
        wall_start = perf_counter()
        conn.send(("ready", shard_index))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "advance":
                _, bound, records = message
                for record in records:
                    medium.inject_boundary(BoundaryRecord(*record))
                advances.inc()
                injected.inc(len(records))
                if telemetry:
                    segment_start = perf_counter()
                    sim.run(until=bound)
                    busy += perf_counter() - segment_start
                else:
                    sim.run(until=bound)
                conn.send(("fence", shard_index, sim.now,
                           sim.events_executed,
                           [tuple(r) for r in medium.drain_outbox()]))
            elif kind == "finish":
                stats = {name: collector()
                         for name, collector in collectors.items()}
                payload = None
                if telemetry:
                    registry = hub.registry
                    registry.gauge("parallel", "worker_busy_seconds",
                                   wall=True, shard=shard_index).set(busy)
                    registry.gauge(
                        "parallel", "worker_idle_seconds", wall=True,
                        shard=shard_index).set(
                            max(0.0, perf_counter() - wall_start - busy))
                    hub.finish()
                    payload = (hub.sim_jsonl(), hub.wall_jsonl())
                conn.send(("stats", shard_index, stats,
                           sim.events_executed, payload))
                conn.close()
                return
            else:  # pragma: no cover - protocol guard
                raise SimulationError(
                    f"shard {shard_index}: unknown message {kind!r}")
    except BaseException as exc:
        try:
            conn.send(("error", shard_index, f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - pipe already gone
            pass


def _merge_telemetry(stream: str, coordinator_text: str,
                     shard_texts: Sequence[str]) -> str:
    """Merge coordinator + per-shard telemetry streams, pinned order.

    One merged JSONL document: a ``merged`` header, then the
    coordinator's stream, then every shard's stream in shard-index
    order, each behind a ``source`` marker line.  Every component is
    canonical (sorted keys, ``repr`` floats) and the concatenation
    order is pinned, so the merged sim stream is byte-identical
    run-to-run — the sharded determinism gate compares exactly this.
    """
    dump = ArrivalLog._dump
    lines = [dump({"type": "merged", "stream": stream,
                   "shards": len(shard_texts)}),
             dump({"type": "source", "source": "coordinator"}),
             coordinator_text.rstrip("\n")]
    for index, text in enumerate(shard_texts):
        lines.append(dump({"type": "source", "source": "shard",
                           "shard": index}))
        lines.append(text.rstrip("\n"))
    return "\n".join(lines) + "\n"


def _recv(conn, shard: int):
    """Receive one message, surfacing worker errors/death as ours."""
    try:
        message = conn.recv()
    except EOFError:
        raise SimulationError(
            f"shard {shard}: worker died without reporting an error")
    if message[0] == "error":
        raise SimulationError(f"shard {message[1]} failed: {message[2]}")
    return message


def run_sharded(cells, *, seed: int, horizon: float, workers: int,
                propagation_factory: Callable[[], PropagationModel],
                reception_floor_dbm: float = -110.0,
                propagation_delay: bool = True,
                exact: bool = True,
                check_invariants: bool = False,
                manual: Optional[Mapping[str, int]] = None,
                lookahead_override: Optional[float] = None,
                telemetry: bool = False,
                telemetry_interval: float = 0.05) -> Dict:
    """Run the cells sharded across worker processes.

    Returns the :func:`run_single` result shape plus the sharding
    diagnostics: shard count, synchronization round count, boundary
    record count, the canonical arrival log (and its SHA-1 — the
    determinism fingerprint), and the :class:`ShardPlan`.

    ``lookahead_override`` replaces every derived cross-shard lookahead
    (test/diagnostics knob — an overstated value trips the boundary
    lookahead-violation guard, which is exactly what its test does).

    ``telemetry=True`` instruments every worker (kernel/medium/radio
    probes plus per-shard round metrics) and the coordinator itself
    (round count, boundary-batch sizes, lookahead windows in the sim
    stream; per-round and per-worker wall seconds in the wall stream),
    then merges the per-shard sim streams in pinned shard-index order
    — ``telemetry_jsonl`` is byte-identical across runs of the same
    seed and partition.  Wall streams merge into
    ``telemetry_wall_jsonl``, which is machine noise and never gated.

    Note the sampler's events are real kernel events: per-shard event
    counts (and therefore the arrival log's fences and its SHA-1)
    differ from an uninstrumented run — but stay byte-identical across
    instrumented runs of the same configuration.  Protocol outcomes
    (per-cell stats) never change.
    """
    plan = partition_cells(cells, propagation_factory(), workers=workers,
                           reception_floor_dbm=reception_floor_dbm,
                           manual=manual)
    lookahead = dict(plan.lookahead)
    if lookahead_override is not None:
        lookahead = {key: lookahead_override for key in lookahead}
    if lookahead and not propagation_delay:
        raise ConfigurationError(
            "coupled shards require propagation_delay=True: the "
            "conservative lookahead IS the minimum cross-shard "
            "propagation delay, and without delay modelling boundary "
            "arrivals would be instantaneous (no positive lookahead "
            "exists)")
    shard_count = len(plan.shards)
    context = multiprocessing.get_context("fork")
    connections = []
    processes = []
    log = ArrivalLog({
        "seed": seed, "horizon": repr(horizon), "workers": workers,
        "shard_count": shard_count, "exact": exact,
        "partition": plan.describe(),
    })
    # Coordinator-side metrics.  Disabled registry = null metrics, so
    # the per-round updates below cost nothing in benchmark posture.
    coord = MetricsRegistry(enabled=telemetry)
    round_counter = coord.counter("parallel", "rounds")
    record_counter = coord.counter("parallel", "boundary_records")
    batch_sizes = coord.histogram("parallel", "boundary_batch")
    round_wall = coord.histogram(
        "parallel", "round_wall_seconds", wall=True,
        bounds=(0.0001, 0.001, 0.01, 0.1, 1.0, 10.0))
    coordinator_start = perf_counter()
    try:
        for index, shard_cells in enumerate(plan.shards):
            parent_conn, child_conn = context.Pipe(duplex=True)
            indices = [plan.index_of(cell.name) for cell in shard_cells]
            process = context.Process(
                target=_worker_main,
                args=(child_conn, index, shard_cells, indices,
                      plan.export_channels[index], seed, horizon,
                      propagation_factory, reception_floor_dbm,
                      propagation_delay, exact, check_invariants,
                      telemetry, telemetry_interval),
                daemon=True)
            process.start()
            child_conn.close()
            connections.append(parent_conn)
            processes.append(process)
        for index, conn in enumerate(connections):
            _recv(conn, index)  # ("ready", index)

        clocks = [0.0] * shard_count
        events = [0] * shard_count
        done = [False] * shard_count
        pending: List[List[Tuple]] = [[] for _ in range(shard_count)]
        incoming = [plan.incoming(index) for index in range(shard_count)]
        if lookahead_override is not None:
            incoming = [{src: lookahead_override for src in sources}
                        for sources in incoming]
        if telemetry:
            # The lookahead windows are part of the partition, hence
            # of the sim-deterministic stream.
            for dst in range(shard_count):
                for src in sorted(incoming[dst]):
                    coord.gauge("parallel", "lookahead_seconds",
                                src=src, dst=dst).set(incoming[dst][src])
        merge_tail: Dict[int, Tuple[float, int]] = {}
        rounds = 0
        boundary_records = 0
        while not all(done):
            rounds += 1
            round_counter.inc()
            round_start = perf_counter()
            advancing = []
            for index in range(shard_count):
                if done[index]:
                    continue
                bound = horizon
                for src, delay in incoming[index].items():
                    if not done[src]:
                        bound = min(bound, clocks[src] + delay)
                if bound <= clocks[index]:
                    continue  # cannot safely advance this round
                advancing.append((index, bound))
            if not advancing:
                raise SimulationError(
                    f"sharded run deadlocked at round {rounds}: no shard "
                    f"can advance (clocks={clocks!r})")
            for index, bound in advancing:
                connections[index].send(("advance", bound, pending[index]))
                pending[index] = []
            batch: List[BoundaryRecord] = []
            for index, _bound in advancing:
                message = _recv(connections[index], index)
                _, shard, clock, executed, outbox = message
                clocks[shard] = clock
                events[shard] = executed
                log.fence(rounds, shard, clock, executed)
                batch.extend(BoundaryRecord(*record) for record in outbox)
                if clock >= horizon:
                    done[shard] = True
            batch.sort()  # (time, shard, seq) is the tuple prefix
            InvariantChecker.check_merge_order(batch, merge_tail)
            batch_sizes.observe(float(len(batch)))
            record_counter.inc(len(batch))
            for record in batch:
                boundary_records += 1
                dests = plan.routes.get((record.shard, record.channel), ())
                live = [dest for dest in dests if not done[dest]]
                log.arrival(record, live)
                for dest in live:
                    pending[dest].append(tuple(record))
            round_wall.observe(perf_counter() - round_start)

        for index, conn in enumerate(connections):
            conn.send(("finish",))
        merged: Dict[str, Dict] = {}
        shard_streams: List[Optional[Tuple[str, str]]] = \
            [None] * shard_count
        for index, conn in enumerate(connections):
            message = _recv(conn, index)
            _, shard, stats, executed, shard_telemetry = message
            events[shard] = executed
            log.final(shard, clocks[shard], executed)
            merged.update(stats)
            shard_streams[shard] = shard_telemetry
        for process in processes:
            process.join(timeout=30)
    finally:
        for process in processes:
            if process.is_alive():  # pragma: no cover - cleanup path
                process.terminate()
                process.join(timeout=5)
        for conn in connections:
            conn.close()

    result = {
        "cells": {name: merged[name] for name in sorted(merged)},
        "events": sum(events),
        "shards": shard_count,
        "rounds": rounds,
        "boundary_records": boundary_records,
        "arrival_log": log.to_jsonl(),
        "arrival_log_sha1": log.sha1(),
        "plan": plan,
    }
    if telemetry:
        from ..telemetry.export import to_jsonl
        coord.gauge("parallel", "coordinator_wall_seconds",
                    wall=True).set(perf_counter() - coordinator_start)
        result["telemetry_jsonl"] = _merge_telemetry(
            "sim", to_jsonl(coord, stream="sim"),
            [streams[0] for streams in shard_streams])
        result["telemetry_wall_jsonl"] = _merge_telemetry(
            "wall", to_jsonl(coord, stream="wall"),
            [streams[1] for streams in shard_streams])
    return result
