"""Tests for statistics primitives."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.core.stats import (
    Counter,
    SampleStat,
    TimeWeightedStat,
    jain_fairness,
)


class TestCounter:
    def test_increments_accumulate(self):
        counter = Counter()
        counter.incr("tx")
        counter.incr("tx", 4)
        assert counter.get("tx") == 5
        assert counter["tx"] == 5

    def test_unknown_counter_is_zero(self):
        assert Counter().get("never") == 0

    def test_as_dict_snapshot(self):
        counter = Counter()
        counter.incr("a")
        snapshot = counter.as_dict()
        counter.incr("a")
        assert snapshot == {"a": 1}


class TestSampleStat:
    def test_mean_and_variance_match_statistics_module(self):
        data = [1.5, 2.0, 4.0, 8.0, 16.5, 0.25]
        stat = SampleStat()
        for value in data:
            stat.add(value)
        assert stat.mean == pytest.approx(statistics.mean(data))
        assert stat.variance == pytest.approx(statistics.variance(data))
        assert stat.minimum == min(data)
        assert stat.maximum == max(data)

    def test_empty_stat_is_nan(self):
        stat = SampleStat()
        assert math.isnan(stat.mean)
        assert math.isnan(stat.minimum)

    def test_single_sample_variance_nan(self):
        stat = SampleStat()
        stat.add(3.0)
        assert math.isnan(stat.variance)

    def test_percentiles(self):
        stat = SampleStat()
        for value in range(1, 101):
            stat.add(float(value))
        assert stat.percentile(0.0) == 1.0
        assert stat.percentile(1.0) == 100.0
        assert stat.percentile(0.5) == pytest.approx(50.5)

    def test_percentile_out_of_range_rejected(self):
        stat = SampleStat()
        stat.add(1.0)
        with pytest.raises(ValueError):
            stat.percentile(1.5)

    def test_confidence_interval_contains_mean(self):
        stat = SampleStat()
        for value in range(100):
            stat.add(float(value % 10))
        low, high = stat.confidence_interval(0.95)
        assert low < stat.mean < high

    def test_max_samples_cap(self):
        stat = SampleStat(max_samples=10)
        for value in range(100):
            stat.add(float(value))
        # Moments still track everything even when samples are capped.
        assert stat.count == 100
        assert stat.mean == pytest.approx(49.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=200))
    def test_welford_matches_two_pass(self, data):
        stat = SampleStat()
        for value in data:
            stat.add(value)
        assert stat.mean == pytest.approx(statistics.fmean(data), abs=1e-6)


class TestTimeWeightedStat:
    def test_weights_by_holding_time(self):
        stat = TimeWeightedStat(initial_value=0.0, start_time=0.0)
        stat.update(1.0, 10.0)   # value 0 held for 1s
        stat.update(3.0, 0.0)    # value 10 held for 2s
        stat.finish(4.0)         # value 0 held for 1s
        assert stat.mean == pytest.approx((0 * 1 + 10 * 2 + 0 * 1) / 4)

    def test_time_going_backwards_rejected(self):
        stat = TimeWeightedStat()
        stat.update(1.0, 5.0)
        with pytest.raises(ValueError):
            stat.update(0.5, 1.0)

    def test_no_elapsed_time_is_nan(self):
        assert math.isnan(TimeWeightedStat().mean)


class TestJainFairness:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_fairness([5.0, 5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_is_maximally_unfair(self):
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_is_nan(self):
        assert math.isnan(jain_fairness([]))

    @given(st.lists(st.floats(min_value=0.01, max_value=1e3),
                    min_size=1, max_size=50))
    def test_bounds(self, values):
        fairness = jain_fairness(values)
        assert 1.0 / len(values) - 1e-9 <= fairness <= 1.0 + 1e-9
