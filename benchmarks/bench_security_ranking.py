"""E9 — the §5.2 security ranking, measured.

The source text ranks Wi-Fi security "from best to worst": WPA2+AES,
WPA+AES, WPA+TKIP/AES, WPA+TKIP, WEP, open.  This benchmark turns the
list into numbers along three axes:

1. **attack effort** — the FMS key recovery runs *live* against a real
   WEP implementation; TKIP/CCMP efforts come from the audit model;
   the WPS side channel runs live too,
2. **per-frame overhead** — bytes each suite adds to an MSDU,
3. **crypto cost** — protect+unprotect wall time per KiB of payload
   (this is also what pytest-benchmark times).
"""

import time

import pytest

from repro.analysis.tables import render_table
from repro.security.audit import (
    audit_wps,
    ranking_reports,
    verify_text_ranking,
)
from repro.security.suites import (
    SUITE_OVERHEAD,
    SecuritySuite,
    build_link_security,
)


def crypto_cost_us_per_kib(suite, payload=bytes(1024), frames=20):
    a, b = build_link_security(suite, passphrase="benchmark passphrase",
                               ssid="bench", wep_key=b"\x01\x02\x03\x04\x05")
    started = time.perf_counter()
    for index in range(frames):
        b.unprotect(a.protect(payload), now=float(index))
    elapsed = time.perf_counter() - started
    return elapsed / frames * 1e6


def run_ranking():
    reports = ranking_reports(fast=False)  # live FMS crack inside
    wps = audit_wps(pin_seed=9_999_999)
    rows = []
    for rank, report in enumerate(reports, start=1):
        rows.append([
            rank,
            report.suite.value,
            report.method,
            f"{report.effort_amount:.3g} {report.effort_unit}",
            report.seconds,
            "yes" if report.breakable_in_practice else "no",
            SUITE_OVERHEAD[report.suite],
            crypto_cost_us_per_kib(report.suite),
        ])
    return reports, rows, wps


def test_security_ranking(benchmark, record_result):
    reports, rows, wps = benchmark.pedantic(run_ranking, rounds=1,
                                            iterations=1)
    text = render_table(
        "E9: Wi-Fi security methods, best to worst (text §5.2 list)",
        ["rank", "suite", "attack", "effort", "attack s",
         "breakable?", "overhead B", "crypto us/KiB"],
        rows, formats=[None, None, None, None, ".3g", None, None, ".0f"])
    text += ("\n\nWPS side channel (undermines even rank 1): "
             f"{wps.effort_amount:.0f} online attempts ~= "
             f"{wps.seconds / 3600:.1f} h — 'disable WPS'.")
    record_result("E9_security_ranking", text)

    # The text's ordering must hold under the measured/modelled efforts.
    assert verify_text_ranking(reports)
    # WEP was cracked live.
    wep = next(report for report in reports
               if report.suite == SecuritySuite.WEP)
    assert wep.measured
    assert wep.seconds < 3600  # "cracked ... in minutes"
    # WPS lands in the text's "2-14 hours" window.
    assert 3600 <= wps.seconds <= 14 * 3600
    # Only WEP and below are practically breakable.
    for report in reports:
        if report.suite in (SecuritySuite.WPA2_AES, SecuritySuite.WPA_AES):
            assert not report.breakable_in_practice
