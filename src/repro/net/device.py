"""The base wireless device: radio + MAC + upper-layer plumbing.

A :class:`WirelessDevice` bundles the pieces every node needs — a
:class:`~repro.phy.transceiver.Radio`, a :class:`~repro.mac.dcf.DcfMac`,
and an upper-layer receive hook — and adapts the MAC listener interface
into overridable methods.  :class:`~repro.net.ap.AccessPoint` and
:class:`~repro.net.station.Station` build on it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..core.engine import Simulator
from ..core.topology import Position
from ..mac.addresses import MacAddress, allocate_address
from ..mac.dcf import DcfConfig, DcfMac, MacListener
from ..mac.frames import Dot11Frame
from ..mac.queueing import Msdu
from ..mac.rate_adapt import RateControllerFactory
from ..phy.channel import Medium
from ..phy.error_models import ErrorModel
from ..phy.standards import PhyStandard
from ..phy.transceiver import Radio, RadioConfig

#: Upper-layer receive callback: (source, payload, meta) -> None.
ReceiveHook = Callable[[MacAddress, bytes, Dict[str, Any]], None]


def subscription(hooks: List[Any], hook: Any) -> Callable[[], None]:
    """Append ``hook`` to a subscriber list and return an idempotent
    unsubscribe callable — the registration pattern every multi-hook
    surface (devices, mesh nodes) shares."""
    hooks.append(hook)

    def _unsubscribe() -> None:
        try:
            hooks.remove(hook)
        except ValueError:
            pass
    return _unsubscribe


class WirelessDevice(MacListener):
    """A node with one radio and one 802.11 MAC."""

    def __init__(self, sim: Simulator, medium: Medium, standard: PhyStandard,
                 position: Position, name: Optional[str] = None,
                 address: Optional[MacAddress] = None, channel_id: int = 1,
                 mac_config: Optional[DcfConfig] = None,
                 radio_config: Optional[RadioConfig] = None,
                 rate_factory: Optional[RateControllerFactory] = None,
                 error_model: Optional[ErrorModel] = None):
        self.sim = sim
        self.address = address if address is not None else allocate_address()
        self.name = name if name is not None else f"dev-{self.address}"
        self.radio = Radio(self.name, medium, standard, position,
                           channel_id=channel_id, config=radio_config,
                           error_model=error_model)
        self.mac = DcfMac(sim, self.radio, self.address, config=mac_config,
                          rate_factory=rate_factory)
        self.mac.listener = self
        self._receive_hooks: List[ReceiveHook] = []
        self._tx_complete_hooks: List[Callable[[Msdu, bool], None]] = []

    # --- geometry ----------------------------------------------------------

    @property
    def position(self) -> Position:
        return self.radio.position

    @position.setter
    def position(self, value: Position) -> None:
        self.radio.position = value

    # --- upper layer ----------------------------------------------------------

    def on_receive(self, hook: ReceiveHook) -> Callable[[], None]:
        """Register an upper-layer receive callback.

        Several subscribers may coexist (an app sink plus a forwarding
        engine, say); each registration returns an unsubscribe callable.
        """
        return subscription(self._receive_hooks, hook)

    def on_tx_complete(self, hook: Callable[[Msdu, bool], None]
                       ) -> Callable[[], None]:
        """Register a per-MSDU completion callback (delivered or dropped);
        returns an unsubscribe callable."""
        return subscription(self._tx_complete_hooks, hook)

    def deliver_up(self, source: MacAddress, payload: bytes,
                   meta: Dict[str, Any]) -> None:
        """Hand an MSDU to the upper layer (hook point for subclasses).

        Dispatch iterates a snapshot so a hook that unsubscribes
        (itself or another) mid-delivery cannot starve later hooks of
        this event.
        """
        for hook in tuple(self._receive_hooks):
            hook(source, payload, meta)

    # --- MacListener ------------------------------------------------------------

    def mac_receive(self, source: MacAddress, destination: MacAddress,
                    payload: bytes, meta: Dict[str, Any]) -> None:
        if destination == self.address or destination.is_broadcast \
                or destination.is_multicast:
            self.deliver_up(source, payload, meta)

    def mac_management(self, frame: Dot11Frame, snr_db: float) -> None:
        """Management frames are handled by subclasses."""

    def mac_tx_complete(self, msdu: Msdu, success: bool) -> None:
        for hook in tuple(self._tx_complete_hooks):
            hook(msdu, success)

    # --- convenience ------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {self.address}>"
