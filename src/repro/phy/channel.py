"""The shared wireless medium.

:class:`Medium` connects radios through a propagation model.  When a
radio transmits, the medium computes the receive power at every other
attached radio on the same channel and delivers the energy after the
speed-of-light propagation delay.  Radios below the reception floor
still receive the energy for CCA/interference purposes — a frame you
cannot decode can still deafen you.

The medium is deliberately policy-free: locking, capture, SINR, and
error decisions all live in :class:`~repro.phy.transceiver.Radio`.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.units import SPEED_OF_LIGHT, dbm_to_watts, watts_to_dbm
from .propagation import PropagationModel
from .standards import PhyMode
from .transceiver import Radio


class Transmission:
    """One frame in flight on the medium."""

    _ids = itertools.count(1)

    __slots__ = ("id", "sender", "payload", "size_bits", "mode",
                 "power_watts", "start_time", "duration")

    def __init__(self, sender: Radio, payload: Any, size_bits: int,
                 mode: PhyMode, power_watts: float, start_time: float,
                 duration: float):
        self.id = next(Transmission._ids)
        self.sender = sender
        self.payload = payload
        self.size_bits = size_bits
        self.mode = mode
        self.power_watts = power_watts
        self.start_time = start_time
        self.duration = duration

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Transmission #{self.id} from {self.sender.name} "
                f"{self.size_bits}b @{self.mode.name}>")


class Medium:
    """A broadcast radio medium with per-channel isolation.

    Parameters
    ----------
    sim:
        The simulation kernel.
    propagation:
        Path-loss model applied between every transmitter/receiver pair.
    reception_floor_dbm:
        Arrivals weaker than this are dropped entirely (not even counted
        as interference).  Keeps the event count linear in *audible*
        neighbours rather than all nodes.  Default -110 dBm is well below
        any CCA threshold.
    propagation_delay:
        Whether to model the speed-of-light delay (on by default; a few
        hundred nanoseconds at WLAN scale, microseconds at WiMAX scale).
    """

    def __init__(self, sim: Simulator, propagation: PropagationModel,
                 reception_floor_dbm: float = -110.0,
                 propagation_delay: bool = True):
        self.sim = sim
        self.propagation = propagation
        self.reception_floor_watts = dbm_to_watts(reception_floor_dbm)
        self.propagation_delay = propagation_delay
        self._radios: List[Radio] = []
        self._active: Dict[int, List[Transmission]] = {}

    def attach(self, radio: Radio) -> None:
        """Register a radio (called from the Radio constructor)."""
        if radio in self._radios:
            raise ConfigurationError(f"radio {radio.name} attached twice")
        self._radios.append(radio)

    def radios_on_channel(self, channel_id: int) -> List[Radio]:
        return [radio for radio in self._radios
                if radio.channel_id == channel_id]

    def active_transmissions(self, channel_id: int) -> List[Transmission]:
        """Transmissions currently on the air on a channel."""
        now = self.sim.now
        active = self._active.get(channel_id, [])
        alive = [tx for tx in active if tx.end_time > now]
        self._active[channel_id] = alive
        return list(alive)

    # --- transmission fan-out ------------------------------------------------

    def transmit(self, sender: Radio, payload: Any, size_bits: int,
                 mode: PhyMode, duration: float, power_watts: float
                 ) -> Transmission:
        """Fan a frame out to every audible co-channel radio."""
        transmission = Transmission(sender, payload, size_bits, mode,
                                    power_watts, self.sim.now, duration)
        self._active.setdefault(sender.channel_id, []).append(transmission)
        self.active_transmissions(sender.channel_id)  # opportunistic GC
        for receiver in self._radios:
            if receiver is sender:
                continue
            if receiver.channel_id != sender.channel_id:
                continue
            rx_power = self.propagation.received_power_watts(
                power_watts, sender.position, receiver.position)
            if rx_power < self.reception_floor_watts:
                continue
            delay = 0.0
            if self.propagation_delay:
                distance = sender.position.distance_to(receiver.position)
                delay = distance / SPEED_OF_LIGHT
            self.sim.schedule(delay, receiver.arrival_begins,
                              transmission, rx_power)
            self.sim.schedule(delay + duration, receiver.arrival_ends,
                              transmission)
        return transmission

    # --- link budget introspection (used by scanning / benchmarks) ----------

    def link_rx_power_dbm(self, sender: Radio, receiver: Radio) -> float:
        """Receive power the receiver would see from the sender, in dBm."""
        rx_watts = self.propagation.received_power_watts(
            sender.tx_power_watts, sender.position, receiver.position)
        return watts_to_dbm(rx_watts)

    def link_snr_db(self, sender: Radio, receiver: Radio) -> float:
        """Noise-limited SNR of the sender->receiver link."""
        return receiver.snr_from_dbm(self.link_rx_power_dbm(sender, receiver))
