"""The run_campaign CLI: listing, schema, errors, and queue mode."""

import pytest

import run_campaign as cli

SPEC = """\
[campaign]
name = "{name}"

[scenario]
builder = "infrastructure_bss"
horizon = 0.05
seed = 3

[scenario.params]
stations = 2

[traffic]
kind = "saturate"
"""


def write_spec(path, name="cli"):
    path.write_text(SPEC.format(name=name))
    return path


def test_run_and_resume_via_main(tmp_path, capsys):
    spec = write_spec(tmp_path / "cli.toml")
    out = tmp_path / "results"
    assert cli.main([str(spec), "--out-dir", str(out)]) == 0
    captured = capsys.readouterr().out
    assert "1 ran, 0 reused" in captured
    assert (out / "cli.results.jsonl").exists()
    assert cli.main([str(spec), "--out-dir", str(out)]) == 0
    assert "0 ran, 1 reused" in capsys.readouterr().out


def test_list_mode_runs_nothing(tmp_path, capsys):
    spec = write_spec(tmp_path / "cli.toml")
    out = tmp_path / "results"
    assert cli.main([str(spec), "--out-dir", str(out), "--list"]) == 0
    assert "1 jobs" in capsys.readouterr().out
    assert not out.exists()


def test_schema_mode(capsys):
    assert cli.main(["--schema"]) == 0
    out = capsys.readouterr().out
    assert "scenario.builder" in out and "sweep.<spec.path>" in out


def test_spec_error_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text('[campaign]\nname = "x"\n[scenario]\n'
                   'builder = "warp_drive"\nhorizon = 1.0\n')
    assert cli.main([str(bad), "--out-dir", str(tmp_path / "o")]) == 2
    assert "scenario.builder" in capsys.readouterr().err


def test_usage_errors(tmp_path):
    with pytest.raises(SystemExit):
        cli.main([])  # no specs, no --queue, no --schema
    with pytest.raises(SystemExit):
        cli.main([str(tmp_path / "x.toml"), "--jobs", "0"])


def test_queue_drain_processes_and_sorts_submissions(tmp_path, capsys):
    queue = tmp_path / "submit"
    queue.mkdir()
    write_spec(queue / "good.toml", name="good")
    (queue / "broken.toml").write_text("[campaign\n")
    out = tmp_path / "results"

    code = cli.main(["--queue", str(queue), "--out-dir", str(out),
                     "--drain", "--quiet"])
    assert code == 1  # the broken submission surfaces in the exit code

    assert (queue / "done" / "good.toml").exists()
    assert (queue / "failed" / "broken.toml").exists()
    error = (queue / "failed" / "broken.toml.error").read_text()
    assert "broken.toml" in error
    assert (out / "good.results.jsonl").exists()
    assert not list(queue.glob("*.toml"))  # consumed exactly once


def test_queue_drain_empty_is_ok(tmp_path):
    queue = tmp_path / "submit"
    queue.mkdir()
    assert cli.main(["--queue", str(queue), "--out-dir",
                     str(tmp_path / "o"), "--drain", "--quiet"]) == 0
