"""Opt-in perf tier: the telemetry overhead contract.

Two claims, both best-of-N wall-clock with the A and B runs
*interleaved* (A, B, A, B, ...): min-of-repeats discards scheduler
noise, and interleaving cancels slow load/thermal drift that would
bias two sequential timing blocks — this test often runs right after
the bench gate has been hammering the machine.

* The *disabled* path is free: a macro carrying its (disabled) hub must
  run within 5% of the same macro with the hub construction stubbed out
  entirely.  This is the production posture CI smokes — the null
  registry, null metrics and refusing sampler must cost nothing
  measurable.
* The *enabled* path at the default 50 ms sampling interval is cheap:
  instrumentation (wraps, probes, sampling, span bookkeeping, the
  final edge sample) within 15% (PERFORMANCE.md documents the ~0.1%
  measured figure; the assertion is loose because CI machines are
  noisy).  The final JSONL serialization is deliberately excluded —
  it is O(records exported), not O(events simulated), and
  PERFORMANCE.md documents it separately.
"""

import pathlib
import sys
import time

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]
                       / "benchmarks"))

from perf import macro as macro_mod  # noqa: E402

pytestmark = pytest.mark.perf

SCALE = 0.25
REPEATS = 5


def _interleaved_best(fn_a, fn_b, repeats=REPEATS):
    """Best-of-``repeats`` for two thunks, alternating A and B."""
    best_a = best_b = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        elapsed = time.perf_counter() - start
        if best_a is None or elapsed < best_a:
            best_a = elapsed
        start = time.perf_counter()
        fn_b()
        elapsed = time.perf_counter() - start
        if best_b is None or elapsed < best_b:
            best_b = elapsed
    return best_a, best_b


class _NullHub:
    def finish(self):
        return self


def test_disabled_telemetry_is_free():
    original = macro_mod._install_telemetry

    def _with_hub():
        macro_mod._install_telemetry = original
        macro_mod.dcf_saturation(SCALE)

    def _hub_free():
        macro_mod._install_telemetry = lambda *args, **kwargs: _NullHub()
        try:
            macro_mod.dcf_saturation(SCALE)
        finally:
            macro_mod._install_telemetry = original

    try:
        baseline, stubbed = _interleaved_best(_with_hub, _hub_free)
    finally:
        macro_mod._install_telemetry = original
    assert baseline <= stubbed * 1.05, \
        (f"disabled-telemetry path costs "
         f"{(baseline / stubbed - 1) * 100:.1f}% over the "
         f"hub-free run (budget 5%)")


def test_enabled_telemetry_overhead_is_bounded():
    original = macro_mod._telemetry_extras

    def _no_export(hubs):
        for hub in hubs:
            hub.finish()  # final sample + span closure still timed
        return {}

    def _disabled():
        macro_mod.dcf_saturation(SCALE)

    def _enabled():
        macro_mod._telemetry_extras = _no_export
        try:
            macro_mod.dcf_saturation(SCALE, telemetry=True)
        finally:
            macro_mod._telemetry_extras = original

    try:
        disabled, enabled = _interleaved_best(_disabled, _enabled)
    finally:
        macro_mod._telemetry_extras = original
    assert enabled <= disabled * 1.15, \
        (f"enabled-telemetry instrumentation costs "
         f"{(enabled / disabled - 1) * 100:.1f}% at the default "
         f"sampling interval (budget 15%)")
