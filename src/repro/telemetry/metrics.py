"""Metrics primitives for the unified telemetry layer.

A :class:`MetricsRegistry` is a flat namespace of counters, gauges and
histograms keyed by ``(subsystem, name, labels)``.  On top of it a
:class:`PeriodicSampler` — driven by the kernel's own event heap, so
its timestamps are *simulation* time — polls registered callables every
sampling interval and appends ``(sim_time, value)`` rows to bounded
per-series time series.

Two streams, one registry
-------------------------

Every metric is either **sim-time** (the default) or **wall-clock**
(``wall=True``).  Sim-time metrics are pure functions of the seed and
the scenario, so two runs of the same seed produce byte-identical
exports — they are part of the determinism contract and CI
byte-compares them.  Wall-clock metrics (worker busy time, coordinator
idle time) are machine noise by definition; they live in a separate,
clearly-marked stream that :mod:`tools.capture_golden` and the
regression gates never look at.

Performance contract
--------------------

The :class:`~repro.core.trace.TraceLog` philosophy applies: a disabled
registry must cost nothing.  ``MetricsRegistry(enabled=False)`` hands
out shared null metrics whose mutators are no-ops, and
``PeriodicSampler.install`` refuses to arm, so a simulator built in
benchmark posture pays neither sampling events nor record allocation.
Enabled-path costs are bounded: counters are one dict-free attribute
add, and samples append to a ``deque(maxlen=...)`` so retention is O(1).
"""

from __future__ import annotations

from collections import deque
from typing import (Any, Callable, Deque, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

from ..core.engine import PeriodicTask, Simulator
from ..core.errors import ConfigurationError

#: A fully-resolved metric key: ``(subsystem, name, (("label", "v"), ...))``.
MetricKey = Tuple[str, str, Tuple[Tuple[str, str], ...]]


def make_key(subsystem: str, name: str,
             labels: Dict[str, Any]) -> MetricKey:
    """Canonicalize a metric key (labels sorted, values stringified)."""
    return (subsystem, name,
            tuple(sorted((k, str(v)) for k, v in labels.items())))


def format_key(key: MetricKey) -> str:
    """Human-readable ``subsystem/name{label=value}`` rendering."""
    subsystem, name, labels = key
    base = f"{subsystem}/{name}"
    if labels:
        inner = ",".join(f"{k}={v}" for k, v in labels)
        return f"{base}{{{inner}}}"
    return base


class CounterMetric:
    """A monotonically increasing count (frames, retries, rounds)."""

    __slots__ = ("key", "value", "wall")

    kind = "counter"

    def __init__(self, key: MetricKey, wall: bool = False):
        self.key = key
        self.value = 0
        self.wall = wall

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class GaugeMetric:
    """A point-in-time value (queue depth, heap depth, clock skew)."""

    __slots__ = ("key", "value", "wall")

    kind = "gauge"

    def __init__(self, key: MetricKey, wall: bool = False):
        self.key = key
        self.value = 0.0
        self.wall = wall

    def set(self, value: float) -> None:
        self.value = value


class HistogramMetric:
    """Fixed-bound bucketed distribution (fan-out widths, batch sizes).

    ``bounds`` are inclusive upper bounds; one implicit +inf bucket
    catches the overflow.  Deterministic by construction: only integer
    bucket counts and an exact running sum (float adds happen in
    observation order, which is event order, which is seeded).
    """

    __slots__ = ("key", "bounds", "counts", "total", "sum", "wall")

    kind = "histogram"

    DEFAULT_BOUNDS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                      500.0, 1000.0)

    def __init__(self, key: MetricKey,
                 bounds: Optional[Sequence[float]] = None,
                 wall: bool = False):
        self.key = key
        self.bounds: Tuple[float, ...] = tuple(
            bounds if bounds is not None else self.DEFAULT_BOUNDS)
        if list(self.bounds) != sorted(self.bounds):
            raise ConfigurationError(
                f"histogram bounds must be sorted: {self.bounds}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.wall = wall

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0


class _NullMetric:
    """Shared no-op stand-in handed out by a disabled registry.

    Mutators accept the live metrics' signatures and do nothing, so
    instrumented call sites need no ``if enabled`` guard of their own —
    the enable check happened once, at handle-creation time.
    """

    __slots__ = ()

    kind = "null"
    value = 0
    wall = False

    def inc(self, amount: int = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """The ``(subsystem, name, labels)``-keyed metric namespace.

    Handles are memoized: asking twice for the same key returns the
    same object, so probes in different subsystems can share a series.
    Creation order is remembered and every exporter iterates it, which
    keeps exports byte-stable without a sort over heterogeneous keys.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[MetricKey, Any] = {}
        self._order: List[MetricKey] = []
        # Per-series sample rows, appended by PeriodicSampler.
        self._series: Dict[MetricKey, Deque[Tuple[float, float]]] = {}
        self._series_order: List[MetricKey] = []
        self._series_wall: Dict[MetricKey, bool] = {}
        self._series_capacity: Optional[int] = 100_000
        self.samples_dropped = 0

    # --- handles -----------------------------------------------------------

    def _get(self, factory: Callable[..., Any], subsystem: str, name: str,
             wall: bool, labels: Dict[str, Any], **kwargs: Any) -> Any:
        if not self.enabled:
            return NULL_METRIC
        key = make_key(subsystem, name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(key, wall=wall, **kwargs)
            self._metrics[key] = metric
            self._order.append(key)
        return metric

    def counter(self, subsystem: str, name: str, wall: bool = False,
                **labels: Any) -> CounterMetric:
        return self._get(CounterMetric, subsystem, name, wall, labels)

    def gauge(self, subsystem: str, name: str, wall: bool = False,
              **labels: Any) -> GaugeMetric:
        return self._get(GaugeMetric, subsystem, name, wall, labels)

    def histogram(self, subsystem: str, name: str,
                  bounds: Optional[Sequence[float]] = None,
                  wall: bool = False, **labels: Any) -> HistogramMetric:
        return self._get(HistogramMetric, subsystem, name, wall, labels,
                         bounds=bounds)

    # --- time series -------------------------------------------------------

    def set_series_capacity(self, capacity: Optional[int]) -> None:
        """Retention bound for *future* series (None = unbounded)."""
        self._series_capacity = capacity

    def record_sample(self, key: MetricKey, time: float, value: float,
                      wall: bool = False) -> None:
        rows = self._series.get(key)
        if rows is None:
            rows = deque(maxlen=self._series_capacity)
            self._series[key] = rows
            self._series_order.append(key)
            self._series_wall[key] = wall
        if rows.maxlen is not None and len(rows) == rows.maxlen:
            self.samples_dropped += 1
        rows.append((time, value))

    def series(self, key: MetricKey) -> List[Tuple[float, float]]:
        """The sampled rows for one series key (copy; empty if none)."""
        return list(self._series.get(key, ()))

    def series_keys(self, wall: Optional[bool] = None) -> List[MetricKey]:
        keys = list(self._series_order)
        if wall is None:
            return keys
        return [key for key in keys if self._series_wall[key] is wall]

    # --- introspection -----------------------------------------------------

    def metrics(self, wall: Optional[bool] = None) -> List[Any]:
        """Every live metric in creation order (optionally one stream)."""
        out = []
        for key in self._order:
            metric = self._metrics[key]
            if wall is None or metric.wall is wall:
                out.append(metric)
        return out

    def get(self, subsystem: str, name: str, **labels: Any) -> Optional[Any]:
        return self._metrics.get(make_key(subsystem, name, labels))

    def __len__(self) -> int:
        return len(self._metrics)


class PeriodicSampler:
    """Kernel-driven sampling of gauges/callbacks into sim-time series.

    Probes register ``(key, fn)`` pairs; every ``interval`` seconds of
    *simulation* time the sampler appends one ``(sim_time, fn())`` row
    per probe, in registration order (a deterministic order, so the
    exported stream is byte-stable).  The sampler rides an ordinary
    :class:`~repro.core.engine.PeriodicTask`, so its events interleave
    with protocol events under the kernel's monotone tie-break —
    they read state but never mutate it, draw no RNG, and therefore
    cannot perturb protocol outcomes.
    """

    def __init__(self, sim: Simulator, registry: MetricsRegistry,
                 interval: float = 0.05):
        if interval <= 0:
            raise ConfigurationError(
                f"sampling interval must be > 0: {interval}")
        self.sim = sim
        self.registry = registry
        self.interval = interval
        self._probes: List[Tuple[MetricKey, Callable[[], float], bool]] = []
        self._task: Optional[PeriodicTask] = None
        self.samples_taken = 0
        self.last_sample_time: Optional[float] = None

    def add(self, subsystem: str, name: str, fn: Callable[[], float],
            wall: bool = False, **labels: Any) -> None:
        """Register a zero-argument callable to poll every interval."""
        if not self.registry.enabled:
            return
        self._probes.append((make_key(subsystem, name, labels), fn, wall))

    def install(self) -> "PeriodicSampler":
        """Arm the sampling task (no-op when the registry is disabled)."""
        if self.registry.enabled and self._task is None and self._probes:
            self._task = PeriodicTask(self.sim, self.interval, self._sample,
                                      offset=self.interval)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    @property
    def installed(self) -> bool:
        return self._task is not None

    def sample_now(self) -> None:
        """Take one sample immediately (used for the final edge).

        Skipped when the periodic task already sampled at exactly this
        instant — the horizon landing on a sampling boundary must not
        double the final row.
        """
        if self.registry.enabled and self._probes \
                and self.last_sample_time != self.sim._now:
            self._sample()

    def _sample(self) -> None:
        now = self.sim._now
        record = self.registry.record_sample
        for key, fn, wall in self._probes:
            record(key, now, fn(), wall)
        self.samples_taken += 1
        self.last_sample_time = now
