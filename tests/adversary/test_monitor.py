"""Monitor-mode capture: promiscuity, passivity, audit feed, determinism."""

import pytest

from repro.core import Position, Simulator
from repro.mac.addresses import reset_allocator
from repro.mac.frames import FrameType
from repro.adversary.monitor import CaptureLog, MonitorRadio
from repro.net.ap import AccessPoint
from repro.net.station import Station
from repro.phy.channel import Medium
from repro.phy.propagation import LogDistance
from repro.phy.standards import DOT11G
from repro.phy.transceiver import RadioState
from repro.security.wep import FmsAttack, WepCipher, is_weak_iv
from repro.scenarios import associate_all


def build_bss(sim, station_count=2):
    medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
    ap = AccessPoint(sim, medium, DOT11G, Position(0, 0, 0), name="ap",
                     ssid="testnet")
    ap.start_beaconing()
    stations = []
    for index in range(station_count):
        station = Station(sim, medium, DOT11G,
                          Position(10.0 + index, 0, 0), name=f"sta{index}")
        station.associate("testnet")
        stations.append(station)
    associate_all(sim, stations)
    return medium, ap, stations


class TestPromiscuousCapture:
    def test_captures_third_party_traffic_of_every_type(self, sim):
        medium, ap, stations = build_bss(sim)
        monitor = MonitorRadio(sim, medium, DOT11G, Position(5, 5, 0))
        for _ in range(10):
            stations[0].send(stations[1].address, b"payload")
        sim.run(until=sim.now + 1.0)
        log = monitor.log
        assert log.counters.get("data") > 0        # none addressed to it
        assert log.counters.get("management") > 0  # beacons
        assert log.counters.get("control") > 0     # ACKs
        assert all(record.addr1 != monitor.name for record in log)

    def test_monitor_never_transmits(self, sim):
        medium, ap, stations = build_bss(sim)
        monitor = MonitorRadio(sim, medium, DOT11G, Position(5, 5, 0))
        states = []
        monitor.radio.on_state_change = states.append
        stations[0].send(ap.address, b"payload")
        sim.run(until=sim.now + 1.0)
        assert RadioState.TX.value not in states
        assert len(monitor.log) > 0

    def test_corrupt_capture_is_opt_in(self, sim):
        medium, ap, stations = build_bss(sim)
        quiet = MonitorRadio(sim, medium, DOT11G, Position(5, 5, 0))
        noisy = MonitorRadio(sim, medium, DOT11G, Position(6, 5, 0),
                             name="monitor2", capture_corrupt=True)
        sim.run(until=sim.now + 2.0)
        assert quiet.log.counters.get("corrupt") == 0
        assert all(record.ok for record in quiet.log)
        # Bad-FCS rows, if any, are flagged and counted consistently.
        assert noisy.log.counters.get("corrupt") == \
            sum(1 for record in noisy.log if not record.ok)

    def test_jammed_frames_appear_as_bad_fcs_rows(self, sim):
        # Regression: with PHY capture enabled the monitor's radio would
        # abandon a locked frame the instant a stronger jam burst
        # arrived — never upcalling it, so exactly the frames a jammer
        # stomps vanished from the log.  The default capture-disabled
        # monitor radio rides the lock out and logs ok=False instead.
        from repro.adversary.emitters import EnergySource
        from repro.phy.channel import Medium as RawMedium
        from repro.phy.propagation import FixedLoss
        from repro.phy.standards import DOT11B
        from repro.phy.transceiver import Radio
        medium = RawMedium(sim, FixedLoss(50.0))
        sender = Radio("s", medium, DOT11B, Position(0, 0, 0))
        monitor = MonitorRadio(sim, medium, DOT11B, Position(1, 0, 0),
                               capture_corrupt=True)
        jammer = EnergySource("j", medium, Position(2, 0, 0),
                              power_dbm=40.0)  # way past capture ratio
        from repro.mac.frames import make_data
        from repro.mac.addresses import allocate_address
        frame = make_data(allocate_address(), allocate_address(),
                          allocate_address(), bytes(200), sequence=0)
        mode = DOT11B.modes[0]
        airtime = DOT11B.frame_airtime(frame.wire_size_bits(), mode)
        sender.transmit(frame, frame.wire_size_bits(), mode)
        sim.schedule_at(airtime * 0.25, lambda: jammer.emit(airtime))
        sim.run(until=0.1)
        assert len(monitor.log) == 1
        assert not monitor.log.records[0].ok

    def test_capacity_cap_counts_drops(self, sim):
        medium, ap, stations = build_bss(sim)
        monitor = MonitorRadio(sim, medium, DOT11G, Position(5, 5, 0),
                               log=CaptureLog(capacity=5))
        sim.run(until=sim.now + 2.0)
        assert len(monitor.log) == 5
        assert monitor.log.dropped > 0


class TestAuditFeed:
    def test_weak_iv_samples_feed_fms(self, sim):
        # Captured WEP bodies -> WeakIvSample stream -> FmsAttack, the
        # honeypot-observation -> audit pipeline end to end.
        medium, ap, stations = build_bss(sim)
        monitor = MonitorRadio(sim, medium, DOT11G, Position(5, 5, 0))
        cipher = WepCipher(b"\x01\x02\x03\x04\x05")
        # Drive the IV counter into a weak-IV run (A+3, 255, X).
        cipher._iv_counter = iter(range(0x03FF00, 0x03FF00 + 64))
        for _ in range(32):
            stations[0].send(stations[1].address,
                             cipher.encrypt(b"\xAA\xAA\x03payload"),
                             protected=True)
        sim.run(until=sim.now + 2.0)
        samples = monitor.log.weak_iv_samples()
        assert samples, "no protected frames captured"
        assert all(is_weak_iv(sample.iv, 0) for sample in samples)
        attack = FmsAttack(key_len=5)
        observed = sum(attack.observe(sample) for sample in samples)
        assert observed == len(samples)

    def test_protected_bodies_requires_kept_bodies(self, sim):
        medium, ap, stations = build_bss(sim)
        monitor = MonitorRadio(sim, medium, DOT11G, Position(5, 5, 0),
                               log=CaptureLog(keep_bodies=False))
        stations[0].send(stations[1].address, b"\xAA" * 16, protected=True)
        sim.run(until=sim.now + 1.0)
        assert monitor.log.protected_bodies() == []
        assert monitor.log.counters.get("protected") > 0


class TestSeededDeterminism:
    """The CI monitor-capture determinism step byte-compares this."""

    @staticmethod
    def _capture_once(seed):
        reset_allocator()
        sim = Simulator(seed=seed)
        medium, ap, stations = build_bss(sim, station_count=3)
        monitor = MonitorRadio(sim, medium, DOT11G, Position(5, 5, 0),
                               capture_corrupt=True)
        for index, station in enumerate(stations):
            for _ in range(4):
                station.send(ap.address, bytes([index]) * 64)
        sim.run(until=sim.now + 1.0)
        return monitor.log.to_jsonl()

    def test_same_seed_byte_identical_capture(self):
        first = self._capture_once(seed=2025)
        second = self._capture_once(seed=2025)
        assert len(first.splitlines()) > 10
        assert first == second  # byte-for-byte, repr-exact floats

    def test_different_seed_changes_the_capture(self):
        assert self._capture_once(seed=2025) != self._capture_once(seed=2026)
