"""The PHY standards catalogue.

This module encodes, as data, the PHY-layer facts the MAC needs and the
reproduction targets the benchmarks report:

* per-standard timing constants (slot, SIFS, preamble) and contention
  window bounds — these drive the DCF,
* per-standard rate ladders (:class:`PhyMode`) with the modulation used
  for error modelling and the minimum SNR used for ideal rate selection,
* the band, channel width, and nominal range/peak-rate figures from the
  source text's comparison tables (Fig 1.13 and the chapter 8 table).

Numbers follow the IEEE 802.11 family values as summarized in the source
text: 802.11 (FHSS, 1/2 Mb/s), 802.11b (DSSS/CCK, up to 11 Mb/s),
802.11a (OFDM, 5 GHz, up to 54 Mb/s), 802.11g (OFDM, 2.4 GHz, up to
54 Mb/s), 802.11n (MIMO, up to 600 Mb/s), 802.11ac (5 GHz, up to
1.3 Gb/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.units import (
    dbm_to_watts,
    gbps,
    kbps,
    mbps,
    thermal_noise_watts,
    usec,
    watts_to_dbm,
)
from .modulation import (
    CCK_11,
    CCK_55,
    DBPSK_DSSS,
    DQPSK_DSSS,
    GFSK,
    Modulation,
    OFDM_16QAM_12,
    OFDM_16QAM_34,
    OFDM_64QAM_23,
    OFDM_64QAM_34,
    OFDM_64QAM_56,
    OFDM_256QAM_34,
    OFDM_256QAM_56,
    OFDM_BPSK_12,
    OFDM_BPSK_34,
    OFDM_QPSK_12,
    OFDM_QPSK_34,
)


@dataclass(frozen=True)
class PhyMode:
    """One entry in a standard's rate ladder."""

    name: str
    data_rate_bps: float
    modulation: Modulation
    #: Minimum SNR (dB) at which this mode is considered usable; drives
    #: ideal rate selection and receiver sensitivity.
    min_snr_db: float
    #: Number of MIMO spatial streams carrying the rate (1 for legacy).
    spatial_streams: int = 1

    def __post_init__(self) -> None:
        if self.data_rate_bps <= 0:
            raise ConfigurationError(f"bad rate for mode {self.name}")


@dataclass(frozen=True)
class PhyStandard:
    """A member of the 802.11 family (or a kindred single-band PHY)."""

    name: str
    band_hz: float
    channel_width_hz: float
    slot_time: float
    sifs: float
    cw_min: int
    cw_max: int
    #: PLCP preamble + header airtime prepended to every frame.
    preamble_time: float
    modes: Tuple[PhyMode, ...]
    #: Rate used for control responses (ACK/CTS) and broadcasts.
    basic_rate_bps: float
    default_tx_power_dbm: float = 20.0
    noise_figure_db: float = 7.0
    #: Nominal range from the source text's comparison table (reporting).
    nominal_range_m: float = 100.0

    def __post_init__(self) -> None:
        if not self.modes:
            raise ConfigurationError(f"{self.name}: no modes")
        rates = [mode.data_rate_bps for mode in self.modes]
        if rates != sorted(rates):
            raise ConfigurationError(f"{self.name}: modes must be sorted by rate")

    # --- derived timing --------------------------------------------------

    @property
    def difs(self) -> float:
        """DCF interframe space: SIFS + 2 slots."""
        return self.sifs + 2.0 * self.slot_time

    @property
    def eifs(self) -> float:
        """Extended IFS used after receiving an undecodable frame."""
        ack_bits = 14 * 8
        ack_time = self.preamble_time + ack_bits / self.basic_rate_bps
        return self.sifs + ack_time + self.difs

    # --- rates -----------------------------------------------------------

    @property
    def max_rate_bps(self) -> float:
        return self.modes[-1].data_rate_bps

    @property
    def min_rate_bps(self) -> float:
        return self.modes[0].data_rate_bps

    def mode_for_rate(self, rate_bps: float) -> PhyMode:
        for mode in self.modes:
            if abs(mode.data_rate_bps - rate_bps) < 0.5:
                return mode
        raise ConfigurationError(
            f"{self.name} has no {rate_bps / 1e6:.1f} Mb/s mode")

    def best_mode_for_snr(self, snr_db: float) -> Optional[PhyMode]:
        """Fastest mode whose SNR requirement is met, or None."""
        best = None
        for mode in self.modes:
            if snr_db >= mode.min_snr_db:
                best = mode
        return best

    def frame_airtime(self, size_bits: int, mode: PhyMode) -> float:
        """Airtime of a frame: PLCP preamble/header plus payload bits."""
        if size_bits < 0:
            raise ConfigurationError(f"negative frame size: {size_bits}")
        return self.preamble_time + size_bits / mode.data_rate_bps

    # --- link budget -------------------------------------------------------

    @property
    def noise_floor_watts(self) -> float:
        return thermal_noise_watts(self.channel_width_hz, self.noise_figure_db)

    @property
    def noise_floor_dbm(self) -> float:
        return watts_to_dbm(self.noise_floor_watts)

    def sensitivity_dbm(self, mode: PhyMode) -> float:
        """Receive power needed to hit the mode's minimum SNR."""
        return self.noise_floor_dbm + mode.min_snr_db


def _modes(*entries: Tuple[str, float, Modulation, float]) -> Tuple[PhyMode, ...]:
    return tuple(PhyMode(name, rate, modulation, snr)
                 for name, rate, modulation, snr in entries)


# --- the IEEE 802.11 family --------------------------------------------------

DOT11_LEGACY = PhyStandard(
    name="802.11",
    band_hz=2.4e9,
    channel_width_hz=1e6,
    slot_time=usec(50.0),
    sifs=usec(28.0),
    cw_min=15,
    cw_max=1023,
    preamble_time=usec(128.0),
    basic_rate_bps=mbps(1.0),
    modes=_modes(
        ("FHSS-1", mbps(1.0), GFSK, 4.0),
        ("FHSS-2", mbps(2.0), GFSK, 7.0),
    ),
    nominal_range_m=100.0,
)

DOT11B = PhyStandard(
    name="802.11b",
    band_hz=2.4e9,
    channel_width_hz=22e6,
    slot_time=usec(20.0),
    sifs=usec(10.0),
    cw_min=31,
    cw_max=1023,
    preamble_time=usec(192.0),
    basic_rate_bps=mbps(1.0),
    modes=_modes(
        ("DSSS-1", mbps(1.0), DBPSK_DSSS, 2.0),
        ("DSSS-2", mbps(2.0), DQPSK_DSSS, 5.0),
        ("CCK-5.5", mbps(5.5), CCK_55, 8.0),
        ("CCK-11", mbps(11.0), CCK_11, 11.0),
    ),
    nominal_range_m=100.0,
)

_OFDM_LADDER = (
    ("OFDM-6", mbps(6.0), OFDM_BPSK_12, 5.0),
    ("OFDM-9", mbps(9.0), OFDM_BPSK_34, 6.0),
    ("OFDM-12", mbps(12.0), OFDM_QPSK_12, 8.0),
    ("OFDM-18", mbps(18.0), OFDM_QPSK_34, 10.0),
    ("OFDM-24", mbps(24.0), OFDM_16QAM_12, 13.0),
    ("OFDM-36", mbps(36.0), OFDM_16QAM_34, 17.0),
    ("OFDM-48", mbps(48.0), OFDM_64QAM_23, 21.0),
    ("OFDM-54", mbps(54.0), OFDM_64QAM_34, 23.0),
)

DOT11A = PhyStandard(
    name="802.11a",
    band_hz=5.0e9,
    channel_width_hz=20e6,
    slot_time=usec(9.0),
    sifs=usec(16.0),
    cw_min=15,
    cw_max=1023,
    preamble_time=usec(20.0),
    basic_rate_bps=mbps(6.0),
    modes=_modes(*_OFDM_LADDER),
    nominal_range_m=100.0,
)

DOT11G = PhyStandard(
    name="802.11g",
    band_hz=2.4e9,
    channel_width_hz=20e6,
    slot_time=usec(20.0),  # long slot for 802.11b compatibility
    sifs=usec(10.0),
    cw_min=15,
    cw_max=1023,
    preamble_time=usec(20.0),
    basic_rate_bps=mbps(6.0),
    modes=_modes(*_OFDM_LADDER),
    nominal_range_m=100.0,
)

def _mimo_mode(name: str, per_stream_bps: float, streams: int,
               modulation: Modulation, snr: float) -> PhyMode:
    return PhyMode(name, per_stream_bps * streams, modulation, snr,
                   spatial_streams=streams)


DOT11N = PhyStandard(
    name="802.11n",
    band_hz=5.0e9,
    channel_width_hz=40e6,
    slot_time=usec(9.0),
    sifs=usec(16.0),
    cw_min=15,
    cw_max=1023,
    preamble_time=usec(36.0),
    basic_rate_bps=mbps(6.0),
    modes=(
        _mimo_mode("MCS0-40", mbps(15.0), 1, OFDM_BPSK_12, 5.0),
        _mimo_mode("MCS1-40", mbps(30.0), 1, OFDM_QPSK_12, 8.0),
        _mimo_mode("MCS2-40", mbps(45.0), 1, OFDM_QPSK_34, 10.0),
        _mimo_mode("MCS3-40", mbps(60.0), 1, OFDM_16QAM_12, 13.0),
        _mimo_mode("MCS4-40", mbps(90.0), 1, OFDM_16QAM_34, 17.0),
        _mimo_mode("MCS5-40", mbps(120.0), 1, OFDM_64QAM_23, 21.0),
        _mimo_mode("MCS6-40", mbps(135.0), 1, OFDM_64QAM_34, 23.0),
        _mimo_mode("MCS12-40", mbps(120.0), 2, OFDM_16QAM_12, 16.0),
        _mimo_mode("MCS15-40", mbps(150.0), 2, OFDM_64QAM_56, 27.0),
        _mimo_mode("MCS23-40", mbps(150.0), 3, OFDM_64QAM_56, 29.0),
        _mimo_mode("MCS31-40", mbps(150.0), 4, OFDM_64QAM_56, 31.0),
    ),
    nominal_range_m=250.0,
)

DOT11AC = PhyStandard(
    name="802.11ac",
    band_hz=5.0e9,
    channel_width_hz=80e6,
    slot_time=usec(9.0),
    sifs=usec(16.0),
    cw_min=15,
    cw_max=1023,
    preamble_time=usec(40.0),
    basic_rate_bps=mbps(6.0),
    modes=(
        _mimo_mode("VHT-MCS0", mbps(32.5), 1, OFDM_BPSK_12, 5.0),
        _mimo_mode("VHT-MCS2", mbps(97.5), 1, OFDM_QPSK_34, 10.0),
        _mimo_mode("VHT-MCS4", mbps(195.0), 1, OFDM_16QAM_34, 17.0),
        _mimo_mode("VHT-MCS7", mbps(292.5), 1, OFDM_64QAM_56, 27.0),
        _mimo_mode("VHT-MCS8", mbps(390.0), 1, OFDM_256QAM_34, 31.0),
        _mimo_mode("VHT-MCS9", mbps(433.3), 1, OFDM_256QAM_56, 33.0),
        _mimo_mode("VHT-MCS9x2", mbps(433.3), 2, OFDM_256QAM_56, 35.0),
        _mimo_mode("VHT-MCS9x3", mbps(433.3), 3, OFDM_256QAM_56, 37.0),
    ),
    nominal_range_m=250.0,
)

#: All members of the family, keyed by name.
STANDARDS: Dict[str, PhyStandard] = {
    standard.name: standard
    for standard in (DOT11_LEGACY, DOT11B, DOT11A, DOT11G, DOT11N, DOT11AC)
}


def get_standard(name: str) -> PhyStandard:
    """Look up a standard by name ("802.11b", "802.11g", ...)."""
    try:
        return STANDARDS[name]
    except KeyError:
        known = ", ".join(sorted(STANDARDS))
        raise ConfigurationError(f"unknown standard {name!r}; known: {known}")
