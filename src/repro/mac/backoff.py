"""Binary-exponential backoff for the DCF contention window.

The contention window starts at ``cw_min``, doubles (as ``2(cw+1)-1``)
on every failed transmission attempt up to ``cw_max``, and resets to
``cw_min`` after a success or a final drop.  The backoff *counter* is
drawn uniformly from ``[0, cw]`` and decremented one slot at a time
while the medium stays idle; it freezes while the medium is busy —
the freezing itself is orchestrated by the DCF, this class only owns
the window arithmetic and the draw.
"""

from __future__ import annotations

import random

from ..core.errors import ConfigurationError


class BackoffWindow:
    """Contention-window state machine for one station."""

    __slots__ = ("cw_min", "cw_max", "_cw", "_rng", "stage")

    def __init__(self, cw_min: int, cw_max: int, rng: random.Random):
        if cw_min < 1 or cw_max < cw_min:
            raise ConfigurationError(
                f"bad contention window bounds: [{cw_min}, {cw_max}]")
        self.cw_min = cw_min
        self.cw_max = cw_max
        self._cw = cw_min
        self._rng = rng
        self.stage = 0  # number of consecutive failures (diagnostics)

    @property
    def cw(self) -> int:
        """Current contention window size."""
        return self._cw

    def draw(self) -> int:
        """Draw a backoff counter uniformly from [0, cw]."""
        return self._rng.randint(0, self._cw)

    def on_failure(self) -> None:
        """Double the window after a failed attempt (collision / no ACK)."""
        self._cw = min(2 * (self._cw + 1) - 1, self.cw_max)
        self.stage += 1

    def on_success(self) -> None:
        """Reset to the minimum window after a successful exchange."""
        self._cw = self.cw_min
        self.stage = 0

    def reset(self) -> None:
        """Reset after a frame is dropped at the retry limit."""
        self.on_success()
