"""Roaming policy and beacon tracking.

In an ESS, a station moving out of one AP's range must hand off to a
better AP without dropping its logical connection (source text §3.2,
Fig 1.10).  The ingredients live here:

* :class:`BeaconTracker` — an EWMA'd view of every AP the station has
  heard beacons from, keyed by BSSID.
* :class:`RoamingPolicy` — the decision rule: roam when the serving
  AP's smoothed SNR falls below a threshold *and* a same-SSID candidate
  beats it by a hysteresis margin, rate-limited by a dwell time so the
  station does not ping-pong between two equidistant APs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import ConfigurationError
from ..mac.addresses import MacAddress


@dataclass
class BeaconObservation:
    """Smoothed state for one overheard AP."""

    bssid: MacAddress
    ssid: str
    channel: int
    capability: int
    beacon_interval_tu: int
    snr_db: float
    last_seen: float
    beacons: int = 1

    def update(self, snr_db: float, now: float, alpha: float) -> None:
        self.snr_db = (1.0 - alpha) * self.snr_db + alpha * snr_db
        self.last_seen = now
        self.beacons += 1


class BeaconTracker:
    """EWMA beacon table, the station's view of nearby APs."""

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1]: {alpha}")
        self.alpha = alpha
        self._table: Dict[MacAddress, BeaconObservation] = {}

    def observe(self, bssid: MacAddress, ssid: str, channel: int,
                capability: int, beacon_interval_tu: int, snr_db: float,
                now: float) -> BeaconObservation:
        entry = self._table.get(bssid)
        if entry is None:
            entry = BeaconObservation(bssid=bssid, ssid=ssid, channel=channel,
                                      capability=capability,
                                      beacon_interval_tu=beacon_interval_tu,
                                      snr_db=snr_db, last_seen=now)
            self._table[bssid] = entry
        else:
            entry.ssid = ssid
            entry.channel = channel
            entry.capability = capability
            entry.beacon_interval_tu = beacon_interval_tu
            entry.update(snr_db, now, self.alpha)
        return entry

    def get(self, bssid: MacAddress) -> Optional[BeaconObservation]:
        return self._table.get(bssid)

    def candidates(self, ssid: str,
                   exclude: Optional[MacAddress] = None
                   ) -> List[BeaconObservation]:
        """APs advertising ``ssid``, strongest first."""
        matches = [entry for entry in self._table.values()
                   if entry.ssid == ssid and entry.bssid != exclude]
        return sorted(matches, key=lambda entry: -entry.snr_db)

    def best(self, ssid: str) -> Optional[BeaconObservation]:
        candidates = self.candidates(ssid)
        return candidates[0] if candidates else None

    def forget(self, bssid: MacAddress) -> None:
        self._table.pop(bssid, None)

    def all(self) -> List[BeaconObservation]:
        return list(self._table.values())


@dataclass(frozen=True)
class RoamingPolicy:
    """When should a station abandon its serving AP for another?"""

    enabled: bool = True
    #: Roam only while the serving AP's smoothed SNR is below this.
    low_snr_threshold_db: float = 15.0
    #: The candidate must beat the serving AP by at least this much.
    hysteresis_db: float = 5.0
    #: Missed consecutive beacons before the link is declared lost.
    beacon_loss_limit: int = 5
    #: Minimum time between roams (anti-ping-pong).
    min_dwell: float = 1.0

    def should_roam(self, serving_snr_db: float,
                    candidate_snr_db: float,
                    time_since_last_roam: float) -> bool:
        if not self.enabled:
            return False
        if time_since_last_roam < self.min_dwell:
            return False
        if serving_snr_db >= self.low_snr_threshold_db:
            return False
        return candidate_snr_db >= serving_snr_db + self.hysteresis_db
