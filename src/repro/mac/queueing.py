"""The MAC interface queue.

A bounded drop-tail FIFO sitting between the upper layer and the DCF.
It tracks occupancy over time (for queueing-delay analysis) and counts
drops so saturation experiments can report offered vs. carried load.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.stats import TimeWeightedStat
from .addresses import MacAddress


@dataclass
class Msdu:
    """One upper-layer packet queued for transmission."""

    destination: MacAddress
    payload: bytes
    enqueued_at: float = 0.0
    protected: bool = False
    #: Opaque upper-layer context returned in completion callbacks.
    context: Any = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        return len(self.payload)


class DropTailQueue:
    """Bounded FIFO with occupancy statistics."""

    def __init__(self, sim: Simulator, capacity: int = 64):
        if capacity < 1:
            raise ConfigurationError(f"queue capacity must be >= 1: {capacity}")
        self._sim = sim
        self._capacity = capacity
        self._queue: Deque[Msdu] = deque()
        self._occupancy = TimeWeightedStat(0.0, sim.now)
        self.enqueued = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def empty(self) -> bool:
        return not self._queue

    @property
    def full(self) -> bool:
        return len(self._queue) >= self._capacity

    def offer(self, msdu: Msdu, front: bool = False) -> bool:
        """Enqueue; returns False (and counts a drop) when full.

        ``front`` enqueues at the head — expedited traffic (routing
        control frames) that must not wait behind a full data backlog.
        Capacity still applies: a full queue rejects either way.
        """
        if self.full:
            self.dropped += 1
            return False
        msdu.enqueued_at = self._sim.now
        if front:
            self._queue.appendleft(msdu)
        else:
            self._queue.append(msdu)
        self.enqueued += 1
        self._occupancy.update(self._sim.now, len(self._queue))
        return True

    def poll(self) -> Optional[Msdu]:
        """Dequeue the head, or None when empty."""
        if not self._queue:
            return None
        msdu = self._queue.popleft()
        self._occupancy.update(self._sim.now, len(self._queue))
        return msdu

    def peek(self) -> Optional[Msdu]:
        return self._queue[0] if self._queue else None

    def mean_occupancy(self) -> float:
        self._occupancy.finish(self._sim.now)
        return self._occupancy.mean

    def clear(self) -> None:
        self._queue.clear()
        self._occupancy.update(self._sim.now, 0.0)
