"""Multi-hop mesh networking: forwarding, routing protocols, gateways.

The routing layer turns the library's single-hop MAC/PHY into networks
shaped like the ones real operators build — relay chains, meshes, and
wired-uplink gateways:

* :class:`~repro.routing.node.MeshNode` — the forwarding engine over an
  ad-hoc station (TTL, duplicate suppression, queue-on-route-miss,
  per-hop stats),
* :class:`~repro.routing.protocol.RoutingProtocol` — the pluggable
  next-hop strategy, with :class:`StaticRouting` (deterministic tables)
  and :class:`~repro.routing.dsdv.DsdvRouting` (sequence-numbered
  distance vector with triggered updates and break repair),
* :class:`~repro.routing.gateway.MeshGateway` — the portal bridge
  between a mesh edge node and an ESS
  :class:`~repro.net.ds.DistributionSystem`.

Topology builders live in :mod:`repro.scenarios`
(``chain_topology`` / ``grid_topology`` / ``build_mesh_network``);
mesh-specific metrics in :mod:`repro.analysis.mesh`.
"""

from .dsdv import DsdvConfig, DsdvRouting
from .gateway import MeshGateway
from .node import MeshConfig, MeshNode
from .packet import (FLAG_FROM_DS, INFINITE_METRIC, MESH_HEADER_SIZE,
                     MeshHeader, decode_dsdv_update, decode_mesh,
                     encode_dsdv_update)
from .protocol import RouteEntry, RoutingProtocol, StaticRouting

__all__ = [
    "DsdvConfig",
    "DsdvRouting",
    "FLAG_FROM_DS",
    "INFINITE_METRIC",
    "MESH_HEADER_SIZE",
    "MeshConfig",
    "MeshGateway",
    "MeshHeader",
    "MeshNode",
    "RouteEntry",
    "RoutingProtocol",
    "StaticRouting",
    "decode_dsdv_update",
    "decode_mesh",
    "encode_dsdv_update",
]
