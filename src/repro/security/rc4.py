"""RC4 stream cipher, from scratch.

RC4 is the cipher underneath both WEP and TKIP (source text §5.2).  It
is implemented here in full — key-scheduling algorithm (KSA) and
pseudo-random generation algorithm (PRGA) — because the WEP key-recovery
attack in :mod:`repro.security.wep` needs to run the *actual* KSA to
exploit its weak-IV bias, not a stand-in.

RC4 is cryptographically broken; it exists in this library as an object
of study, not for protecting anything.
"""

from __future__ import annotations

from typing import Iterator, List

from ..core.errors import SecurityError


def ksa(key: bytes) -> List[int]:
    """Key-scheduling algorithm: produce the initial permutation."""
    if not 1 <= len(key) <= 256:
        raise SecurityError(f"RC4 key must be 1..256 bytes, got {len(key)}")
    state = list(range(256))
    j = 0
    for i in range(256):
        j = (j + state[i] + key[i % len(key)]) & 0xFF
        state[i], state[j] = state[j], state[i]
    return state


def prga(state: List[int]) -> Iterator[int]:
    """Pseudo-random generation algorithm: yield keystream bytes.

    Mutates (a copy of) the permutation; call with ``ksa(key)`` output.
    """
    state = list(state)
    i = j = 0
    while True:
        i = (i + 1) & 0xFF
        j = (j + state[i]) & 0xFF
        state[i], state[j] = state[j], state[i]
        yield state[(state[i] + state[j]) & 0xFF]


def keystream(key: bytes, length: int) -> bytes:
    """First ``length`` keystream bytes for ``key``."""
    if length < 0:
        raise SecurityError(f"negative keystream length: {length}")
    generator = prga(ksa(key))
    return bytes(next(generator) for _ in range(length))


def crypt(key: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt (RC4 is symmetric) ``data`` under ``key``."""
    stream = keystream(key, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))
