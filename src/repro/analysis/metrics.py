"""Evaluation metrics shared by benchmarks and tests.

Includes the Bianchi analytic model of DCF saturation throughput, used
as the reference shape for experiment E10: our simulated MAC should
track the analytic curve within simulation noise.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..core.stats import jain_fairness  # re-exported for convenience
from ..phy.standards import PhyStandard

__all__ = [
    "aggregate_throughput_bps",
    "bianchi_saturation_throughput",
    "bianchi_tau",
    "delay_percentiles",
    "jain_fairness",
]


def aggregate_throughput_bps(byte_counts: Sequence[int],
                             window: float) -> float:
    """Total goodput across flows over an observation window."""
    if window <= 0:
        raise ValueError(f"window must be positive: {window}")
    return sum(byte_counts) * 8 / window


def delay_percentiles(samples: Sequence[float],
                      fractions: Sequence[float] = (0.5, 0.9, 0.99)
                      ) -> Dict[float, float]:
    """Interpolated percentiles of a delay sample set."""
    if not samples:
        return {fraction: math.nan for fraction in fractions}
    ordered = sorted(samples)
    result = {}
    for fraction in fractions:
        position = fraction * (len(ordered) - 1)
        low, high = int(math.floor(position)), int(math.ceil(position))
        if low == high:
            result[fraction] = ordered[low]
        else:
            weight = position - low
            result[fraction] = ordered[low] * (1 - weight) + \
                ordered[high] * weight
    return result


def bianchi_tau(n: int, cw_min: int, retry_limit: int = 6) -> float:
    """Per-slot transmission probability from Bianchi's fixed point.

    Solves the two-equation fixed point of the 2000 JSAC model by
    bisection on the collision probability ``p``:

        tau = 2(1-2p) / ((1-2p)(W+1) + pW(1-(2p)^m))
        p   = 1 - (1 - tau)^(n-1)

    with ``W = cw_min + 1`` and ``m = retry_limit`` backoff stages.
    """
    if n < 1:
        raise ValueError(f"need n >= 1 stations, got {n}")
    w = cw_min + 1
    m = retry_limit

    def tau_of_p(p: float) -> float:
        if p >= 0.5:
            # Degenerate branch of the closed form; evaluate directly.
            numerator = 2.0 * (1.0 - 2.0 * p)
            denominator = ((1.0 - 2.0 * p) * (w + 1)
                           + p * w * (1.0 - (2.0 * p) ** m))
            if abs(denominator) < 1e-12:
                return 2.0 / (w + 1)
            return numerator / denominator
        numerator = 2.0 * (1.0 - 2.0 * p)
        denominator = ((1.0 - 2.0 * p) * (w + 1)
                       + p * w * (1.0 - (2.0 * p) ** m))
        return numerator / denominator

    if n == 1:
        return tau_of_p(0.0)
    low, high = 0.0, 1.0 - 1e-9
    for _ in range(200):
        mid = (low + high) / 2.0
        tau = tau_of_p(mid)
        implied_p = 1.0 - (1.0 - tau) ** (n - 1)
        if implied_p > mid:
            low = mid
        else:
            high = mid
    return tau_of_p((low + high) / 2.0)


def bianchi_saturation_throughput(n: int, standard: PhyStandard,
                                  payload_bytes: int, data_rate_bps: float,
                                  mac_header_bytes: int = 28,
                                  ack_bytes: int = 14,
                                  use_rts: bool = False,
                                  rts_bytes: int = 20,
                                  cts_bytes: int = 14) -> float:
    """Analytic DCF saturation goodput (payload bits/s) for n stations.

    This is the classic Bianchi computation with the library's own
    timing constants, so the analytic curve and the simulation share
    every parameter except the model idealizations.
    """
    tau = bianchi_tau(n, standard.cw_min)
    p_tr = 1.0 - (1.0 - tau) ** n                      # some tx in a slot
    p_s = (n * tau * (1.0 - tau) ** (n - 1) / p_tr) if p_tr > 0 else 0.0
    slot = standard.slot_time
    sifs, difs = standard.sifs, standard.difs
    preamble = standard.preamble_time

    t_payload = (mac_header_bytes + payload_bytes) * 8 / data_rate_bps
    t_ack = preamble + ack_bytes * 8 / standard.basic_rate_bps
    if use_rts:
        t_rts = preamble + rts_bytes * 8 / standard.basic_rate_bps
        t_cts = preamble + cts_bytes * 8 / standard.basic_rate_bps
        t_success = (t_rts + sifs + t_cts + sifs + preamble + t_payload
                     + sifs + t_ack + difs)
        t_collision = t_rts + difs + sifs + t_cts
    else:
        t_success = preamble + t_payload + sifs + t_ack + difs
        t_collision = preamble + t_payload + difs + sifs + t_ack

    expected_payload = p_tr * p_s * payload_bytes * 8
    expected_slot = ((1.0 - p_tr) * slot
                     + p_tr * p_s * t_success
                     + p_tr * (1.0 - p_s) * t_collision)
    if expected_slot <= 0:
        return 0.0
    return expected_payload / expected_slot
