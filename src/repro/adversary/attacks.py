"""MAC-layer attack nodes: spoofed floods, evil twins, NAV abuse.

Where :mod:`repro.adversary.emitters` attacks the PHY with raw energy,
these attackers speak valid 802.11 — which is exactly why they work:
the classic management/control-plane weaknesses are that deauth frames
are unauthenticated, SSIDs are trivially cloned, and every station
honors the duration field of frames it merely overhears.

* :class:`FrameInjector` — the shared transmit primitive: a raw radio
  that injects arbitrary (spoofed) frames with CSMA-lite politeness,
  outside any MAC state machine.
* :class:`DeauthFlooder` — spoofs DEAUTHENTICATION frames from the AP
  to its stations (and/or from the stations to the AP), tearing
  associations down as fast as they re-form.
* :class:`RogueAp` — an evil twin: a real AP cloning the victim SSID
  to lure roaming stations onto attacker infrastructure.
* :class:`CtsNavAttacker` — CTS-to-self NAV abuse: periodic CTS frames
  with a near-maximum duration field freeze every honest contender's
  virtual carrier sense without jamming a single data frame.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Iterable, List, Optional, Sequence

from ..core.engine import Simulator, Timer
from ..core.errors import ConfigurationError
from ..core.stats import Counter
from ..core.topology import Position
from ..core.units import watts_to_dbm
from ..mac.addresses import BROADCAST, MacAddress, allocate_address
from ..mac.frames import (
    Dot11Frame,
    ManagementSubtype,
    SEQUENCE_MODULO,
    make_cts,
    make_management,
)
from ..net.ap import AccessPoint
from ..phy.channel import Medium
from ..phy.standards import PhyStandard, DOT11B
from ..phy.transceiver import Radio, RadioConfig, RadioState

#: Largest representable duration field value (µs): the NAV-abuse
#: payload.  32767 rather than 65535 because the standard reserves the
#: top bit for the CF period / PS-Poll AID encodings.
MAX_DURATION_US = 0x7FFF


class FrameInjector:
    """Raw-frame injection with CSMA-lite politeness.

    Attack tooling does not run a compliant MAC: no backoff state
    machine, no retries, no ACK handling.  The injector transmits a
    frame as soon as its radio is neither transmitting nor (optionally)
    sensing a busy medium, deferring by a short jittered pause
    otherwise — enough politeness for the attack frames to actually
    get on the air in a saturated cell, drawn from a named RNG stream
    so seeded runs reproduce the same injection schedule.
    """

    def __init__(self, sim: Simulator, medium: Medium,
                 standard: PhyStandard = DOT11B,
                 position: Position = Position(),
                 channel_id: int = 1, name: str = "injector",
                 respect_cca: bool = True,
                 defer_max: float = 200e-6,
                 queue_limit: int = 256,
                 radio_config: Optional[RadioConfig] = None):
        self.sim = sim
        self.name = name
        self.respect_cca = respect_cca
        self.defer_max = defer_max
        self.queue_limit = queue_limit
        self.counters = Counter()
        self.radio = Radio(name, medium, standard, position,
                           channel_id=channel_id, config=radio_config)
        # The injector transmits blind; it never needs to decode.
        self.radio.decodable_modes.clear()
        self.radio.on_tx_end = self._tx_end
        self._basic_mode = standard.mode_for_rate(standard.basic_rate_bps)
        self._queue: Deque[Dot11Frame] = deque()
        self._pump_timer = Timer(sim, self._pump)
        self._rng = sim.rng.stream(f"injector.{name}")

    @property
    def position(self) -> Position:
        return self.radio.position

    @property
    def pending(self) -> int:
        return len(self._queue)

    def inject(self, frame: Dot11Frame) -> bool:
        """Queue a frame for transmission at the next polite instant.

        Drop-tail at ``queue_limit``: a flood outrunning a saturated
        medium must not grow the backlog without bound.  Returns False
        on a drop.
        """
        if len(self._queue) >= self.queue_limit:
            self.counters.incr("queue_drops")
            return False
        self._queue.append(frame)
        if not self._pump_timer.armed and \
                self.radio.state is not RadioState.TX:
            self._pump()
        return True

    def _pump(self) -> None:
        if not self._queue:
            return
        radio = self.radio
        if radio.state is RadioState.TX or \
                (self.respect_cca and radio.cca_busy()):
            self.counters.incr("deferrals")
            self._pump_timer.schedule(self._rng.uniform(0.0, self.defer_max))
            return
        frame = self._queue.popleft()
        self.counters.incr("injected")
        radio.transmit(frame, frame.wire_size_bits(), self._basic_mode)

    def _tx_end(self) -> None:
        # Half duplex: the next queued frame goes out only after this
        # one leaves the antenna (plus a polite jittered beat).
        if self._queue and not self._pump_timer.armed:
            self._pump_timer.schedule(self._rng.uniform(0.0, self.defer_max))


class DeauthFlooder:
    """Spoofed deauthentication flood against one BSS.

    Deauthentication frames are unauthenticated management frames — a
    station receiving one "from" its serving AP tears the link down
    (:meth:`repro.net.station.Station._link_lost`), and an AP receiving
    one "from" a station drops the association record.  The flooder
    forges the transmitter address accordingly:

    * ``toward="stations"`` — frames spoofed *from the AP*, to each
      target (or broadcast): kicks the clients.
    * ``toward="ap"`` — frames spoofed *from each station* to the AP:
      churns the AP's association table (the
      :meth:`~repro.net.ap.AccessPoint.deauthenticate` removal path).
    * ``toward="both"`` — both directions per round.
    """

    TOWARD = ("stations", "ap", "both")

    def __init__(self, sim: Simulator, injector: FrameInjector,
                 bssid: MacAddress,
                 targets: Optional[Sequence[MacAddress]] = None,
                 interval: float = 50e-3, toward: str = "stations",
                 name: str = "deauth-flood"):
        if toward not in self.TOWARD:
            raise ConfigurationError(
                f"toward must be one of {self.TOWARD}, got {toward!r}")
        if interval <= 0.0:
            raise ConfigurationError("interval must be positive")
        if toward in ("ap", "both") and not targets:
            # Station->AP frames need concrete station addresses to
            # spoof; only the stations direction has a broadcast
            # fallback.  Failing here beats a flooder that ticks
            # forever injecting nothing.
            raise ConfigurationError(
                f"toward={toward!r} requires explicit station targets")
        self.sim = sim
        self.injector = injector
        self.bssid = bssid
        self.targets: List[MacAddress] = list(targets) if targets else []
        self.interval = interval
        self.toward = toward
        self.name = name
        self.counters = Counter()
        self._sequence = 0
        self._tick_timer = Timer(sim, self._tick)
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        self._tick()

    def stop(self) -> None:
        self._active = False
        self._tick_timer.cancel()

    def _next_seq(self) -> int:
        sequence = self._sequence
        self._sequence = (self._sequence + 1) % SEQUENCE_MODULO
        return sequence

    def _tick(self) -> None:
        if not self._active:
            return
        if self.toward in ("stations", "both"):
            receivers: Iterable[MacAddress] = self.targets or (BROADCAST,)
            for receiver in receivers:
                self.counters.incr("deauths_spoofed")
                self.injector.inject(make_management(
                    ManagementSubtype.DEAUTHENTICATION,
                    transmitter=self.bssid, receiver=receiver,
                    bssid=self.bssid, body=b"",
                    sequence=self._next_seq()))
        if self.toward in ("ap", "both"):
            for station in self.targets:
                self.counters.incr("deauths_spoofed")
                self.injector.inject(make_management(
                    ManagementSubtype.DEAUTHENTICATION,
                    transmitter=station, receiver=self.bssid,
                    bssid=self.bssid, body=b"",
                    sequence=self._next_seq()))
        self._tick_timer.schedule(self.interval)


class RogueAp(AccessPoint):
    """An evil-twin access point cloning a victim network's SSID.

    It is a fully functional :class:`~repro.net.ap.AccessPoint` — it
    beacons, authenticates and associates like the real thing, which is
    the point: a station whose roaming policy sees a stronger same-SSID
    beacon (the rogue parks itself closer, or beacons hotter) will
    re-associate onto attacker infrastructure without noticing.
    Stations that took the bait are recorded in :attr:`lured`.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.lured: List[MacAddress] = []

    @classmethod
    def twin_of(cls, victim: AccessPoint, position: Position,
                power_advantage_db: float = 6.0,
                name: Optional[str] = None) -> "RogueAp":
        """Clone the victim's SSID/channel, beaconing hotter by
        ``power_advantage_db``.

        The victim's whole radio configuration rides along (CCA
        threshold, preamble floor, capture model) — only the transmit
        power differs, so any behavioral gap between twin and victim
        is the advertised power advantage and nothing else.
        """
        config = dataclasses.replace(
            victim.radio.config,
            tx_power_dbm=watts_to_dbm(victim.radio.tx_power_watts)
            + power_advantage_db)
        return cls(victim.sim, victim.radio.medium, victim.radio.standard,
                   position, name=name if name is not None else
                   f"rogue-{victim.name}",
                   channel_id=victim.radio.channel_id,
                   ssid=victim.ssid, radio_config=config)

    def _handle_assoc(self, sender: MacAddress, body: bytes) -> None:
        known = sender in self.associations
        super()._handle_assoc(sender, body)
        if not known and sender in self.associations:
            self.lured.append(sender)
            self.ap_counters.incr("stations_lured")


class CtsNavAttacker:
    """CTS-to-self NAV abuse: silence a cell with control frames.

    Every station sets its NAV from the duration field of frames not
    addressed to it — including a bare CTS whose RA is the attacker's
    own (spoofed) address.  A periodic CTS with a near-maximum duration
    therefore reserves the medium wall-to-wall: honest stations defer
    without a single collision, while the attacker spends a few hundred
    microseconds of airtime per reservation.  ``interval`` defaults to
    just inside the reservation so the NAV never lapses.
    """

    def __init__(self, sim: Simulator, injector: FrameInjector,
                 duration_us: int = MAX_DURATION_US,
                 interval: Optional[float] = None,
                 address: Optional[MacAddress] = None,
                 name: str = "cts-abuse"):
        if not 0 < duration_us <= MAX_DURATION_US:
            raise ConfigurationError(
                f"duration_us must be in (0, {MAX_DURATION_US}]")
        self.sim = sim
        self.injector = injector
        self.duration_us = duration_us
        #: RA of the self-addressed CTS (nobody answers; nobody needs to).
        self.address = address if address is not None else allocate_address()
        self.interval = interval if interval is not None \
            else duration_us * 1e-6 * 0.9
        self.name = name
        self.counters = Counter()
        self._tick_timer = Timer(sim, self._tick)
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        self._tick()

    def stop(self) -> None:
        self._active = False
        self._tick_timer.cancel()

    def _tick(self) -> None:
        if not self._active:
            return
        self.counters.incr("cts_sent")
        self.injector.inject(make_cts(self.address, self.duration_us))
        self._tick_timer.schedule(self.interval)
