"""Tests for the sharded executor machinery (build context, boundary
medium, arrival log, coordinator protocol)."""

import json

import pytest

from repro.core.engine import Simulator
from repro.core.errors import ConfigurationError, InvariantViolation
from repro.core.topology import Position
from repro.core.trace import TraceLog
from repro.mac.addresses import MacAddress
from repro.parallel import (ArrivalLog, BoundaryRecord, CellSpec,
                            ShardMedium, run_sharded, run_single)
from repro.parallel.executor import CellBuild
from repro.phy.channel import ENERGY_ONLY
from repro.phy.propagation import LogDistance
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio


def free_space():
    return LogDistance(2.4e9, exponent=2.0)


def _noop_build(ctx):
    return lambda: {}


def spec(name, channel=1, x=0.0, build=_noop_build):
    return CellSpec(name, channel, Position(x, 0.0, 0.0), 10.0, build)


class TestCellBuild:
    def _ctx(self, name="alpha", index=2):
        sim = Simulator(seed=3)
        return CellBuild(sim, None, spec(name), index)

    def test_addresses_are_deterministic_per_cell_index(self):
        first = self._ctx()
        assert first.address() == MacAddress(0x02_00_00_00_00_00 | (3 << 16))
        assert first.address() \
            == MacAddress(0x02_00_00_00_00_00 | (3 << 16) | 1)
        again = self._ctx()
        assert again.address().value == 0x02_00_00_00_00_00 | (3 << 16)

    def test_addresses_are_locally_administered_and_unicast(self):
        address = self._ctx().address()
        assert address.is_locally_administered
        assert not address.is_multicast

    def test_different_cells_never_collide(self):
        a = {self._ctx(index=0).address().value for _ in range(1)}
        b = {self._ctx(index=1).address().value for _ in range(1)}
        assert not a & b

    def test_rng_is_cell_namespaced(self):
        ctx = self._ctx(name="alpha")
        expected = Simulator(seed=3).rng.stream("cell/alpha/s").random()
        assert ctx.rng.stream("s").random() == expected


class TestShardMedium:
    def _medium(self, shard=0, export=frozenset({1})):
        sim = Simulator(seed=1, trace=TraceLog(enabled=False))
        medium = ShardMedium(sim, free_space(), shard=shard,
                             export_channels=export)
        return sim, medium

    def test_exported_channel_transmissions_fill_outbox(self):
        sim, medium = self._medium()
        radio = Radio("tx", medium, DOT11B, Position(0, 0, 0), channel_id=1)
        medium.transmit_energy(radio, duration=1e-4, power_watts=0.1)
        (record,) = medium.drain_outbox()
        assert record.shard == 0 and record.seq == 0
        assert record.sender == "tx" and record.channel == 1
        assert record.power_watts == 0.1 and record.duration == 1e-4
        assert medium.outbox == []  # drained

    def test_non_exported_channel_is_not_recorded(self):
        sim, medium = self._medium(export=frozenset({6}))
        radio = Radio("tx", medium, DOT11B, Position(0, 0, 0), channel_id=1)
        medium.transmit_energy(radio, duration=1e-4, power_watts=0.1)
        assert medium.drain_outbox() == []

    def test_export_seq_increments_per_shard(self):
        sim, medium = self._medium()
        radio = Radio("tx", medium, DOT11B, Position(0, 0, 0), channel_id=1)
        medium.transmit_energy(radio, duration=1e-5, power_watts=0.1)
        medium.transmit_energy(radio, duration=1e-5, power_watts=0.1)
        first, second = medium.drain_outbox()
        assert (first.seq, second.seq) == (0, 1)

    def test_inject_boundary_delivers_energy_to_local_radios(self):
        sim, medium = self._medium()
        rx = Radio("rx", medium, DOT11B, Position(0, 0, 0), channel_id=1)
        record = BoundaryRecord(0.0, 1, 0, "remote", 30.0, 0.0, 0.0,
                                1, 0.5, 2e-4)
        medium.inject_boundary(record)
        assert medium.boundary_injected == 1
        # Two raw heap entries (begins/ends) for the one audible radio.
        assert sim.pending_events == 2
        sim.run(until=1e-4)
        # Mid-burst the ghost's energy drives the receiver's CCA.
        assert rx.total_incident_power_watts() > 0.0
        sim.run(until=1.0)
        assert rx.total_incident_power_watts() == 0.0

    def test_injected_ghost_is_energy_only(self):
        sim, medium = self._medium()
        rx = Radio("rx", medium, DOT11B, Position(0, 0, 0), channel_id=1)
        record = BoundaryRecord(0.0, 1, 0, "remote", 5.0, 0.0, 0.0,
                                1, 0.5, 2e-4)
        transmission = medium.inject_boundary(record)
        assert transmission.mode is ENERGY_ONLY
        # A strong arrival (5 m away) that a real frame would lock; the
        # ghost never locks because no standard decodes ENERGY_ONLY.
        sim.run(until=1.0)
        assert rx.state.name != "RX"
        assert rx.total_incident_power_watts() == 0.0

    def test_inject_below_floor_schedules_nothing(self):
        sim, medium = self._medium()
        Radio("rx", medium, DOT11B, Position(0, 0, 0), channel_id=1)
        record = BoundaryRecord(0.0, 1, 0, "remote", 5e5, 0.0, 0.0,
                                1, 0.5, 2e-4)
        medium.inject_boundary(record)
        assert sim.pending_events == 0

    def test_past_arrival_raises_lookahead_violation(self):
        sim, medium = self._medium()
        Radio("rx", medium, DOT11B, Position(0, 0, 0), channel_id=1)
        sim.schedule(1.0, lambda: None)
        sim.run(until=1.0)
        record = BoundaryRecord(0.5, 1, 0, "remote", 30.0, 0.0, 0.0,
                                1, 0.5, 2e-4)
        with pytest.raises(InvariantViolation, match="lookahead"):
            medium.inject_boundary(record)


class TestArrivalLog:
    def test_log_is_canonical_jsonl(self):
        log = ArrivalLog({"seed": 1})
        log.arrival(BoundaryRecord(0.125, 0, 0, "s", 0.0, 0.0, 0.0,
                                   1, 0.1, 1e-4), dests=[1])
        log.fence(1, 0, 0.25, 10)
        log.final(0, 0.25, 10)
        text = log.to_jsonl()
        lines = text.strip().split("\n")
        assert [json.loads(line)["type"] for line in lines] \
            == ["header", "arrival", "fence", "final"]
        # Floats ride as repr strings: byte-stable across platforms.
        assert json.loads(lines[1])["time"] == "0.125"
        assert len(log.sha1()) == 40

    def test_identical_content_hashes_identically(self):
        def build():
            log = ArrivalLog({"seed": 9})
            log.fence(1, 0, 0.5, 42)
            return log
        assert build().sha1() == build().sha1()


def _counting_build(ctx):
    """A tiny deterministic DES cell: periodic self-traffic."""
    sim = ctx.sim
    draws = []

    def tick(remaining):
        draws.append(ctx.rng.stream("tick").random())
        if remaining > 0:
            sim.schedule(0.01, tick, remaining - 1)

    sim.schedule(0.0, tick, 5)
    return lambda: {"draws": draws, "address": str(ctx.address())}


class TestExecutors:
    def test_single_and_sharded_match_when_decoupled(self):
        cells = [CellSpec(f"c{i}", 1, Position(i * 1e6, 0.0, 0.0), 10.0,
                          _counting_build) for i in range(4)]
        single = run_single(cells, seed=11, horizon=0.1,
                            propagation_factory=free_space)
        sharded = run_sharded(cells, seed=11, horizon=0.1, workers=2,
                              propagation_factory=free_space)
        assert single["cells"] == sharded["cells"]
        assert single["events"] == sharded["events"]
        assert sharded["shards"] == 2
        assert sharded["rounds"] == 1
        assert sharded["boundary_records"] == 0

    def test_sharded_runs_are_byte_identical(self):
        cells = [CellSpec(f"c{i}", 1, Position(i * 1e6, 0.0, 0.0), 10.0,
                          _counting_build) for i in range(3)]
        first = run_sharded(cells, seed=5, horizon=0.05, workers=3,
                            propagation_factory=free_space)
        second = run_sharded(cells, seed=5, horizon=0.05, workers=3,
                             propagation_factory=free_space)
        assert first["arrival_log"] == second["arrival_log"]
        assert first["arrival_log_sha1"] == second["arrival_log_sha1"]
        assert first["cells"] == second["cells"]

    def test_coupled_without_propagation_delay_rejected(self):
        cells = [spec("a", x=0.0), spec("b", x=100.0)]
        with pytest.raises(ConfigurationError, match="propagation_delay"):
            run_sharded(cells, seed=1, horizon=0.01, workers=2,
                        propagation_factory=free_space,
                        propagation_delay=False,
                        manual={"a": 0, "b": 1})

    def test_coupled_pair_synchronizes_in_lookahead_rounds(self):
        cells = [spec("a", x=0.0, build=_counting_build),
                 spec("b", x=100.0, build=_counting_build)]
        result = run_sharded(cells, seed=2, horizon=1e-5, workers=2,
                             propagation_factory=free_space,
                             manual={"a": 0, "b": 1})
        # lookahead = 80 m / c ~ 267 ns; horizon 10 us => ~38 rounds.
        assert result["rounds"] > 10

    def test_worker_exception_surfaces_with_shard_id(self):
        def broken(ctx):
            raise RuntimeError("boom in builder")
        cells = [spec("a", build=broken)]
        from repro.core.errors import SimulationError
        with pytest.raises(SimulationError, match="shard 0.*boom"):
            run_sharded(cells, seed=1, horizon=0.01, workers=1,
                        propagation_factory=free_space)

    def test_check_invariants_runs_sharded(self):
        cells = [CellSpec(f"c{i}", 1, Position(i * 1e6, 0.0, 0.0), 10.0,
                          _counting_build) for i in range(2)]
        result = run_sharded(cells, seed=3, horizon=0.1, workers=2,
                             propagation_factory=free_space,
                             check_invariants=True)
        assert result["shards"] == 2
