#!/usr/bin/env python3
"""A tour of the long-range substrates: WiMAX, cellular, satellite.

The text's Fig 1.7 and 1.8 scenarios in one script:

1. a WiMAX base station back-hauling a suburb of subscribers,
2. a 4G drive test with live handoffs across a hexagonal deployment,
3. the island-office satellite link and why its file transfers crawl
   unless the window is opened wide.

Run:  python examples/metro_and_beyond.py
"""

from repro import Simulator
from repro.core.topology import Position
from repro.mobility.models import LinearMobility
from repro.wman.wimax import SubscriberStation, WimaxBaseStation
from repro.wwan.cellular import CellularNetwork, MobileDevice
from repro.wwan.satellite import (
    GeoSatellite,
    GroundStation,
    SatelliteLink,
)


def wimax_section(sim: Simulator) -> None:
    print("== WiMAX: one tower, a suburb of subscribers ==")
    bs = WimaxBaseStation(sim, Position(0, 0, 0))
    print(f"  channel peak {bs.peak_rate_bps() / 1e6:.0f} Mb/s, "
          f"coverage {bs.max_range_m() / 1e3:.0f} km")
    homes = []
    for index, km in enumerate((1, 4, 9, 16, 25)):
        home = SubscriberStation(f"home-{km}km", Position(km * 1e3, 0, 0))
        bs.attach(home)
        home.offer_downlink(50_000_000)
        homes.append(home)
    bs.start()
    sim.run(until=sim.now + 2.0)
    for home in homes:
        profile = bs.link_profile(home)
        print(f"  {home.name:>10}: {profile[0]:>9} "
              f"-> {home.delivered_bytes * 8 / 2.0 / 1e6:5.1f} Mb/s")


def cellular_section(sim: Simulator) -> None:
    print("\n== 4G drive test across a hexagonal deployment ==")
    network = CellularNetwork(sim, "4G", rings=2, cell_radius_m=1200.0)
    print(f"  {len(network.cells)} cells, reuse factor "
          f"{network.reuse_factor}, "
          f"{network.total_capacity_sessions()} simultaneous sessions")
    car = MobileDevice(sim, network, "car", Position(-4000, 0, 0),
                       reevaluate_every=0.5)
    car.start_session()
    LinearMobility(sim, car, Position(4000, 0, 0), speed_mps=25.0,
                   tick=0.25).start()
    sim.run(until=sim.now + 330.0)
    print(f"  8 km drive: {car.counters.get('handoffs')} handoffs, "
          f"{car.counters.get('dropped')} drops, "
          f"session alive: {car.in_session}, "
          f"rate {car.current_rate_bps() / 1e6:.0f} Mb/s")


def satellite_section(sim: Simulator) -> None:
    print("\n== The island office: a GEO satellite link ==")
    bird = GeoSatellite("bird", longitude_deg=10.0)
    link = SatelliteLink(sim, bird,
                         GroundStation("hq", Position(0, 0, 0)),
                         GroundStation("island", Position(3e6, 0, 0)))
    print(f"  RTT {link.rtt() * 1e3:.0f} ms over "
          f"{link.transponder.rate_bps / 1e6:.0f} Mb/s DVB-S2")
    for window_kib in (64, 1024, 8192):
        rate = link.window_limited_throughput_bps(window_kib * 1024)
        print(f"  {window_kib:>5} KiB window -> {rate / 1e6:6.2f} Mb/s")
    deliveries = []
    sent_at = sim.now
    link.send("hq", 10_000_000, on_delivered=deliveries.append)
    sim.run(until=sim.now + 5.0)
    print(f"  a 10 MB report lands {deliveries[0] - sent_at:.2f} s after "
          "sending (serialization + two space hops)")


def main() -> None:
    sim = Simulator(seed=20)
    wimax_section(sim)
    cellular_section(sim)
    satellite_section(sim)


if __name__ == "__main__":
    main()
