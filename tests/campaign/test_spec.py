"""Spec schema validation: every error names the exact spec path."""

import pytest

from repro.campaign import (SpecError, canonical_json, load_spec, spec_sha1,
                            validate_spec)
from repro.campaign.spec import concrete_job_spec, get_path, set_path

from .conftest import small_spec


def err(raw, source=None):
    with pytest.raises(SpecError) as excinfo:
        validate_spec(raw, source=source)
    return excinfo.value


class TestValidation:
    def test_minimal_spec_normalizes(self):
        spec = validate_spec(small_spec())
        assert spec["campaign"]["name"] == "unit"
        assert spec["mode"] == {"profile": "exact", "kernel": "auto"}
        assert spec["seeds"]["list"] == [3, 4]
        assert spec["traffic"]["kind"] == "saturate"

    def test_missing_name_names_path(self):
        error = err({"scenario": {"builder": "hidden_terminal",
                                  "horizon": 1.0}})
        assert error.path == "campaign.name"
        assert "missing" in str(error)

    def test_unknown_builder_lists_available(self):
        error = err(small_spec(scenario={"builder": "nope", "horizon": 1.0}))
        assert error.path == "scenario.builder"
        assert "hidden_terminal" in str(error)

    def test_unknown_builder_param_names_full_path(self):
        spec = small_spec()
        spec["scenario"]["params"] = {"statoins": 4}
        error = err(spec)
        assert error.path == "scenario.params.statoins"
        assert "stations" in str(error)  # suggests the accepted set

    def test_bool_is_not_an_int(self):
        spec = small_spec()
        spec["scenario"]["params"] = {"stations": True}
        assert err(spec).path == "scenario.params.stations"

    def test_bad_horizon(self):
        spec = small_spec()
        spec["scenario"] = dict(spec["scenario"], horizon=-1.0)
        assert err(spec).path == "scenario.horizon"

    def test_unknown_traffic_kind(self):
        assert err(small_spec(traffic={"kind": "burst"})).path \
            == "traffic.kind"

    def test_unknown_top_level_key(self):
        spec = small_spec()
        spec["scenari"] = {}
        assert err(spec).path == "(root).scenari"

    def test_adversary_requires_position(self):
        spec = small_spec(adversaries=[{"kind": "periodic_jammer"}])
        assert err(spec).path == "adversaries.0.position"

    def test_adversary_unknown_kind_indexed(self):
        spec = small_spec(adversaries=[
            {"kind": "periodic_jammer", "position": [0, 0, 0]},
            {"kind": "emp", "position": [0, 0, 0]}])
        assert err(spec).path == "adversaries.1.kind"

    def test_adversary_unknown_param(self):
        spec = small_spec(adversaries=[
            {"kind": "periodic_jammer", "position": [0, 0, 0],
             "burst_duration": 1e-3}])
        error = err(spec)
        assert error.path == "adversaries.0.burst_duration"
        assert "on_time" in str(error)

    def test_sweep_axis_must_resolve(self):
        spec = small_spec()
        spec["sweep"] = {"scenario.parms.stations": [2, 4]}
        error = err(spec)
        assert error.path == "sweep.scenario.parms.stations"
        assert "scenario.parms" in str(error)

    def test_sweep_axis_must_not_be_empty(self):
        spec = small_spec()
        spec["sweep"] = {"scenario.params.stations": []}
        assert err(spec).path == "sweep.scenario.params.stations"

    def test_duplicate_seeds_rejected(self):
        spec = small_spec(seeds={"list": [1, 2, 1]})
        assert err(spec).path == "seeds.list"

    def test_seed_count_must_be_positive(self):
        assert err(small_spec(seeds={"count": 0})).path == "seeds.count"

    def test_unknown_profile_and_kernel(self):
        assert err(small_spec(mode={"profile": "warp"})).path \
            == "mode.profile"
        assert err(small_spec(mode={"kernel": "rust"})).path \
            == "mode.kernel"

    def test_differential_tolerance_needs_a_bound(self):
        spec = small_spec(differential={
            "reference": "other", "tolerances": {"pdr": {}}})
        assert err(spec).path == "differential.tolerances.pdr"

    def test_source_prefixes_message(self):
        error = err({"campaign": {"name": "x"}}, source="bad.toml")
        assert str(error).startswith("bad.toml: ")


class TestLoader:
    def test_load_toml(self, tmp_path):
        path = tmp_path / "c.toml"
        path.write_text('[campaign]\nname = "c"\n'
                        '[scenario]\nbuilder = "hidden_terminal"\n'
                        'horizon = 0.25\nseed = 9\n')
        spec = load_spec(path)
        assert spec["scenario"]["builder"] == "hidden_terminal"
        assert spec["seeds"]["list"] == [9]

    def test_load_json(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text('{"campaign": {"name": "c"}, "scenario": '
                        '{"builder": "hidden_terminal", "horizon": 0.25}}')
        assert load_spec(path)["campaign"]["name"] == "c"

    def test_toml_syntax_error_names_file(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("[campaign\n")
        with pytest.raises(SpecError, match="broken.toml"):
            load_spec(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            load_spec(tmp_path / "absent.toml")


class TestCanonicalForm:
    def test_canonical_json_is_key_sorted_and_repr_floats(self):
        assert canonical_json({"b": 0.1, "a": 1}) == '{"a":1,"b":"0.1"}'

    def test_sha1_ignores_key_order(self):
        assert spec_sha1({"a": 1, "b": 2}) == spec_sha1({"b": 2, "a": 1})

    def test_paths(self):
        spec = validate_spec(small_spec())
        set_path(spec, "scenario.params.stations", 5)
        assert get_path(spec, "scenario.params.stations") == 5

    def test_concrete_job_spec_pins_axes_and_seed(self):
        spec = validate_spec(small_spec())
        job = concrete_job_spec(
            spec, {"scenario.params.rts_threshold_bytes": 256}, seed=9)
        assert job["scenario"]["params"]["rts_threshold_bytes"] == 256
        assert job["scenario"]["seed"] == 9
        assert "sweep" not in job and "seeds" not in job

    def test_concrete_job_spec_identity_excludes_grid_shape(self):
        narrow = validate_spec(small_spec(seeds={"count": 1}))
        wide = validate_spec(small_spec(seeds={"count": 2}))
        axes = {"scenario.params.rts_threshold_bytes": 2347}
        assert spec_sha1(concrete_job_spec(narrow, axes, 3)) \
            == spec_sha1(concrete_job_spec(wide, axes, 3))

    def test_concrete_job_spec_bad_axis_value_mentions_axis(self):
        spec = validate_spec(small_spec())
        with pytest.raises(SpecError, match="after applying sweep axes"):
            concrete_job_spec(
                spec, {"scenario.params.rts_threshold_bytes": "big"},
                seed=3)
