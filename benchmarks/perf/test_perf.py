"""Opt-in perf tier: ``pytest -m perf``.

Two jobs:

* assert the determinism contract of the fast-path core — same seed,
  same stats, cached or uncached — at reduced scale, and
* run the ``tools/run_bench.py --check`` regression gate against the
  committed baseline (fails on a >25% work/sec regression).

These are deselected by default (see pytest.ini) so tier-1 stays fast;
CI opts in with ``pytest -m perf benchmarks/perf``.
"""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from perf.macro import MACROS, dcf_saturation  # noqa: E402

pytestmark = pytest.mark.perf

#: Reduced scale so the whole perf tier runs in a few seconds.
SCALE = 0.25


@pytest.mark.parametrize("name", sorted(MACROS))
def test_macro_is_deterministic(name):
    """Same seed, same workload -> bit-identical outcome stats."""
    first = MACROS[name](SCALE)
    second = MACROS[name](SCALE)
    assert first["stats"] == second["stats"]
    assert first["work"] == second["work"]


def test_cached_and_uncached_link_budgets_agree():
    """The LinkCache is a pure memoization: disabling it must not change
    a single delivered byte or executed event."""
    cached = dcf_saturation(SCALE, cache_links=True)
    uncached = dcf_saturation(SCALE, cache_links=False)
    cached_stats = {k: v for k, v in cached["stats"].items()
                    if not k.startswith(("link_cache", "fanout_"))}
    uncached_stats = {k: v for k, v in uncached["stats"].items()
                      if not k.startswith(("link_cache", "fanout_"))}
    assert cached_stats == uncached_stats
    # And the caching actually worked.  Per-transmit LinkCache lookups
    # were absorbed into fan-out plan compilation, so the per-frame hit
    # stream now shows up on the plan counters; the LinkCache warms the
    # compiles (every pair looked up at least once, no thrashing).
    assert cached["stats"]["fanout_plan_hits"] > \
        10 * cached["stats"]["fanout_plan_misses"]
    assert cached["stats"]["link_cache_misses"] > 0
    assert uncached["stats"]["fanout_plan_hits"] == 0


def test_no_regression_vs_committed_baseline(capsys):
    """The run_bench --check gate, wired into the test tier."""
    tools_dir = pathlib.Path(__file__).resolve().parent.parent.parent / "tools"
    sys.path.insert(0, str(tools_dir))
    try:
        import run_bench
    finally:
        sys.path.pop(0)
    exit_code = run_bench.run_check(sorted(MACROS), repeats=3,
                                    update_baseline=False)
    output = capsys.readouterr().out
    assert exit_code == 0, f"perf regression detected:\n{output}"
