"""Tests for positions and placement helpers."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.core.topology import (
    ORIGIN,
    Position,
    circle_layout,
    grid_layout,
    hexagonal_cell_centers,
    line_layout,
    nearest,
    random_disc_layout,
)


class TestPosition:
    def test_distance_pythagoras(self):
        assert Position(3, 4, 0).distance_to(ORIGIN) == pytest.approx(5.0)

    def test_distance_3d(self):
        assert Position(1, 2, 2).distance_to(ORIGIN) == pytest.approx(3.0)

    def test_translated(self):
        moved = ORIGIN.translated(dx=1, dy=-2, dz=3)
        assert (moved.x, moved.y, moved.z) == (1, -2, 3)

    def test_toward_moves_the_right_distance(self):
        target = Position(10, 0, 0)
        step = ORIGIN.toward(target, 4.0)
        assert step.x == pytest.approx(4.0)
        assert step.y == 0.0

    def test_toward_self_is_identity(self):
        assert ORIGIN.toward(ORIGIN, 5.0) == ORIGIN

    def test_bearing(self):
        assert ORIGIN.bearing_to(Position(0, 1, 0)) == \
            pytest.approx(math.pi / 2)

    def test_positions_are_hashable_values(self):
        assert Position(1, 2, 3) == Position(1, 2, 3)
        assert len({Position(1, 2, 3), Position(1, 2, 3)}) == 1

    @given(st.floats(-100, 100), st.floats(-100, 100),
           st.floats(-100, 100), st.floats(-100, 100))
    def test_distance_symmetric(self, x1, y1, x2, y2):
        a, b = Position(x1, y1), Position(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))


class TestLayouts:
    def test_line_layout_spacing(self):
        points = line_layout(4, 2.5)
        assert [point.x for point in points] == [0.0, 2.5, 5.0, 7.5]

    def test_grid_layout_count(self):
        assert len(grid_layout(3, 4, 1.0)) == 12

    def test_circle_layout_on_radius(self):
        for point in circle_layout(7, 10.0):
            assert point.distance_to(ORIGIN) == pytest.approx(10.0)

    def test_circle_layout_distinct_points(self):
        points = circle_layout(12, 5.0)
        assert len({(round(p.x, 9), round(p.y, 9)) for p in points}) == 12

    def test_random_disc_inside_radius(self):
        rng = random.Random(1)
        for point in random_disc_layout(200, 30.0, rng):
            assert point.distance_to(ORIGIN) <= 30.0 + 1e-9

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            line_layout(-1, 1.0)


class TestHexagonalCells:
    def test_ring_counts(self):
        # 1 + 6 + 12 = 19 cells for two rings.
        assert len(hexagonal_cell_centers(0, 100.0)) == 1
        assert len(hexagonal_cell_centers(1, 100.0)) == 7
        assert len(hexagonal_cell_centers(2, 100.0)) == 19

    def test_first_ring_at_pitch_distance(self):
        centers = hexagonal_cell_centers(1, 100.0)
        pitch = math.sqrt(3.0) * 100.0
        for center in centers[1:]:
            assert center.distance_to(ORIGIN) == pytest.approx(pitch)


class TestNearest:
    def test_picks_closest(self):
        candidates = [Position(10, 0), Position(1, 0), Position(5, 0)]
        index, distance = nearest(ORIGIN, candidates)
        assert index == 1
        assert distance == pytest.approx(1.0)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            nearest(ORIGIN, [])
