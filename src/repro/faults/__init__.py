"""Deterministic fault injection and strict-mode invariant checking.

The subsystem splits into three parts:

* :mod:`~repro.faults.injectors` — the mechanisms: link fades layered
  over any propagation model (:class:`LinkFader`), queue-pressure
  floods (:func:`inject_queue_pressure`).  Crash/restart lives on the
  components themselves (``Station.crash``, ``AccessPoint.crash``,
  ``MeshNode.crash``).
* :mod:`~repro.faults.schedule` — the policies: a declarative seeded
  timeline (:class:`FaultSchedule`) and a randomized storm generator
  (:class:`ChaosMonkey`), both logging every fired fault to a
  byte-comparable :class:`FaultLog`.
* :mod:`~repro.faults.invariants` — the safety net: an opt-in
  :class:`InvariantChecker` that audits kernel, MAC, PHY and routing
  state from inside the event loop.

Everything is seeded-deterministic: injector timing comes from
dedicated named RNG streams, so adding a fault schedule never perturbs
MAC backoff, PHY error, or routing jitter draws.
"""

from .injectors import DegradedPropagation, LinkFader, inject_queue_pressure
from .invariants import InvariantChecker, NAV_MAX_LEGAL, Violation
from .schedule import ChaosMonkey, FaultLog, FaultRecord, FaultSchedule

__all__ = [
    "ChaosMonkey",
    "DegradedPropagation",
    "FaultLog",
    "FaultRecord",
    "FaultSchedule",
    "InvariantChecker",
    "LinkFader",
    "NAV_MAX_LEGAL",
    "Violation",
    "inject_queue_pressure",
]
