"""Manifest persistence: atomic updates, resume, grid-change detection."""

import json

import pytest

from repro.campaign import Manifest, SpecError


def test_round_trip(tmp_path):
    path = tmp_path / "c.manifest.json"
    manifest = Manifest.open(path, "c", "g" * 40)
    manifest.record_done("k1", {"x": 1})
    manifest.record_failed("k2", "boom")

    reopened = Manifest.open(path, "c", "g" * 40)
    assert reopened.is_done("k1")
    assert reopened.row("k1") == {"x": 1}
    assert reopened.status("k2") == "failed"
    assert reopened.jobs["k2"]["error"] == "boom"
    assert reopened.counts() == {"done": 1, "failed": 1}


def test_every_record_persists_immediately(tmp_path):
    path = tmp_path / "c.manifest.json"
    manifest = Manifest.open(path, "c", "g" * 40)
    manifest.record_done("k1", {"x": 1})
    # No close()/flush() call needed: the file on disk is already
    # complete after each record — that is the crash-safety property.
    on_disk = json.loads(path.read_text())
    assert on_disk["jobs"]["k1"]["status"] == "done"
    assert on_disk["grid_sha1"] == "g" * 40


def test_no_tmp_file_left_behind(tmp_path):
    path = tmp_path / "c.manifest.json"
    manifest = Manifest.open(path, "c", "g" * 40)
    manifest.record_done("k1", {"x": 1})
    assert not (tmp_path / "c.manifest.json.tmp").exists()


def test_failed_then_done_overwrites(tmp_path):
    path = tmp_path / "c.manifest.json"
    manifest = Manifest.open(path, "c", "g" * 40)
    manifest.record_failed("k1", "flaky")
    manifest.record_done("k1", {"x": 2})
    assert Manifest.open(path, "c", "g" * 40).row("k1") == {"x": 2}


def test_grid_change_is_detected(tmp_path):
    path = tmp_path / "c.manifest.json"
    Manifest.open(path, "c", "a" * 40).record_done("k1", {})
    with pytest.raises(SpecError, match="different grid"):
        Manifest.open(path, "c", "b" * 40)


def test_fresh_discards_previous_state(tmp_path):
    path = tmp_path / "c.manifest.json"
    Manifest.open(path, "c", "a" * 40).record_done("k1", {})
    fresh = Manifest.open(path, "c", "b" * 40, fresh=True)
    assert fresh.jobs == {}


def test_corrupt_manifest_is_reported(tmp_path):
    path = tmp_path / "c.manifest.json"
    path.write_text("{ torn")
    with pytest.raises(SpecError, match="not valid JSON"):
        Manifest.open(path, "c", "a" * 40)


def test_format_mismatch_is_reported(tmp_path):
    path = tmp_path / "c.manifest.json"
    path.write_text(json.dumps({"format": 99, "grid_sha1": "a" * 40,
                                "jobs": {}}))
    with pytest.raises(SpecError, match="format"):
        Manifest.open(path, "c", "a" * 40)
