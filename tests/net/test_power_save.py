"""Integration tests for 802.11 power-save mode (§4.2: PM bit, TIM,
PS-Poll, More Data)."""

import pytest

from repro.core import Position, Simulator
from repro.core.energy import EnergyMeter
from repro.core.errors import ProtocolError
from repro.net.ap import AccessPoint
from repro.net.station import Station
from repro.phy.channel import Medium
from repro.phy.propagation import LogDistance
from repro.phy.standards import DOT11G


def build_ps_bss(sim):
    medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
    ap = AccessPoint(sim, medium, DOT11G, Position(0, 0, 0), name="ap",
                     ssid="psnet")
    sta = Station(sim, medium, DOT11G, Position(10, 0, 0), name="sta")
    ap.start_beaconing()
    sta.associate("psnet")
    sim.run(until=2.0)
    assert sta.associated
    return medium, ap, sta


class TestEnterLeave:
    def test_requires_association(self, sim):
        medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
        sta = Station(sim, medium, DOT11G, Position(0, 0, 0))
        with pytest.raises(ProtocolError):
            sta.enable_power_save()

    def test_ap_learns_the_pm_state(self, sim):
        _, ap, sta = build_ps_bss(sim)
        sta.enable_power_save()
        sim.run(until=2.5)
        assert ap.associations[sta.address].power_save
        sta.disable_power_save()
        sim.run(until=3.0)
        assert not ap.associations[sta.address].power_save

    def test_station_dozes_most_of_the_time(self, sim):
        _, ap, sta = build_ps_bss(sim)
        sta.enable_power_save()
        sim.run(until=2.5)
        meter = EnergyMeter(sim)
        meter.attach(sta.radio)
        start = sim.now
        sim.run(until=start + 2.0)
        assert meter.seconds_in("sleep") / 2.0 > 0.8

    def test_power_save_cuts_energy(self, sim):
        """The point of the whole §4.2 machinery, measured in joules."""
        _, ap, sta = build_ps_bss(sim)
        meter = EnergyMeter(sim)
        meter.attach(sta.radio)
        start = sim.now
        sim.run(until=start + 2.0)
        awake_joules = meter.joules

        sta.enable_power_save()
        sim.run(until=sim.now + 0.5)  # settle
        meter2 = EnergyMeter(sim)
        meter2.attach(sta.radio)
        start = sim.now
        sim.run(until=start + 2.0)
        assert meter2.joules < awake_joules / 3


class TestBufferedDelivery:
    def test_frames_buffered_while_dozing(self, sim):
        _, ap, sta = build_ps_bss(sim)
        sta.enable_power_save()
        sim.run(until=2.6)
        ap.send_to_station(sta.address, b"while you slept")
        assert ap.buffered_for(sta.address) == 1
        assert ap.ap_counters.get("ps_buffered") == 1

    def test_tim_triggers_ps_poll_retrieval(self, sim):
        _, ap, sta = build_ps_bss(sim)
        sta.enable_power_save()
        sim.run(until=2.6)
        inbox = []
        sta.on_receive(lambda src, p, meta: inbox.append(p))
        ap.send_to_station(sta.address, b"buffered frame")
        sim.run(until=3.5)
        assert inbox == [b"buffered frame"]
        assert sta.sta_counters.get("ps_polls") >= 1
        assert ap.ap_counters.get("ps_poll_releases") == 1
        assert ap.buffered_for(sta.address) == 0

    def test_more_data_chain_drains_the_buffer(self, sim):
        _, ap, sta = build_ps_bss(sim)
        sta.enable_power_save()
        sim.run(until=2.6)
        inbox = []
        sta.on_receive(lambda src, p, meta: inbox.append(
            (p, meta.get("more_data"))))
        for index in range(4):
            ap.send_to_station(sta.address, bytes([index]))
        sim.run(until=4.0)
        assert [payload[0] for payload, _more in inbox] == [0, 1, 2, 3]
        # All but the last carried More Data.
        assert [more for _p, more in inbox] == [True, True, True, False]

    def test_waking_flushes_without_polling(self, sim):
        _, ap, sta = build_ps_bss(sim)
        sta.enable_power_save()
        sim.run(until=2.6)
        inbox = []
        sta.on_receive(lambda src, p, meta: inbox.append(p))
        ap.send_to_station(sta.address, b"pending")
        sta.disable_power_save()
        sim.run(until=3.5)
        assert inbox == [b"pending"]
        assert ap.ap_counters.get("ps_poll_releases") == 0

    def test_buffer_limit_drops_oldest(self, sim):
        _, ap, sta = build_ps_bss(sim)
        ap.ps_buffer_limit = 2
        sta.enable_power_save()
        sim.run(until=2.6)
        for index in range(4):
            ap.send_to_station(sta.address, bytes([index]))
        assert ap.buffered_for(sta.address) == 2
        assert ap.ap_counters.get("ps_buffer_drops") == 2

    def test_dozing_station_still_transmits_uplink(self, sim):
        """A PS station wakes on its own to send; the AP hears it."""
        _, ap, sta = build_ps_bss(sim)
        sta.enable_power_save()
        sim.run(until=2.6)
        inbox = []
        ap.on_receive(lambda src, p, meta: inbox.append(p))
        sta.send(ap.address, b"uplink while in PS")
        sim.run(until=3.5)
        assert inbox == [b"uplink while in PS"]
