"""Tests for the attack-effort audit harness (experiment E9 logic)."""

import pytest

from repro.security.audit import (
    AttackReport,
    audit_ccmp,
    audit_open,
    audit_tkip,
    audit_wps,
    ranking_reports,
    verify_text_ranking,
)
from repro.security.suites import SecuritySuite


class TestIndividualAudits:
    def test_open_is_free(self):
        report = audit_open()
        assert report.seconds == 0.0
        assert report.breakable_in_practice

    def test_tkip_attack_is_minutes_to_hours_per_packet(self):
        report = audit_tkip()
        assert 60.0 < report.seconds < 24 * 3600.0
        assert "one short packet" in report.prize
        assert report.breakable_in_practice

    def test_ccmp_is_not_practically_breakable(self):
        report = audit_ccmp()
        assert not report.breakable_in_practice
        assert report.effort_amount == pytest.approx(2.0 ** 127)

    def test_wps_search_is_hours_in_the_worst_case(self):
        report = audit_wps(pin_seed=9_999_999)
        assert report.measured
        assert report.effort_amount <= 11_000
        # "2-14 hours of sustained effort" per the source text.
        assert 3600 < report.seconds < 14 * 3600

    def test_wps_lucky_pin_is_faster(self):
        lucky = audit_wps(pin_seed=123)
        worst = audit_wps(pin_seed=9_999_999)
        assert lucky.effort_amount < worst.effort_amount

    def test_reports_have_methods(self):
        for report in (audit_open(), audit_tkip(), audit_ccmp()):
            assert report.method
            assert report.effort_unit


class TestRanking:
    def test_text_ranking_order_holds(self):
        reports = ranking_reports(fast=True)
        assert verify_text_ranking(reports)

    def test_all_six_suites_present_in_order(self):
        reports = ranking_reports(fast=True)
        assert [report.suite for report in reports] == [
            SecuritySuite.WPA2_AES,
            SecuritySuite.WPA_AES,
            SecuritySuite.WPA_TKIP_AES,
            SecuritySuite.WPA_TKIP,
            SecuritySuite.WEP,
            SecuritySuite.OPEN,
        ]

    def test_wep_is_breakable_but_wpa2_is_not(self):
        reports = {report.suite: report
                   for report in ranking_reports(fast=True)}
        assert reports[SecuritySuite.WEP].breakable_in_practice
        assert not reports[SecuritySuite.WPA2_AES].breakable_in_practice

    def test_violated_ranking_detected(self):
        reports = ranking_reports(fast=True)
        reversed_reports = list(reversed(reports))
        assert not verify_text_ranking(reversed_reports)
