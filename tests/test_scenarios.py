"""Tests for the scenario builders."""

import pytest

from repro import scenarios
from repro.core import Simulator
from repro.core.errors import SimulationError
from repro.phy.standards import DOT11A, DOT11B


class TestInfrastructureBuilder:
    def test_builds_and_associates(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=3)
        assert len(bss.stations) == 3
        assert all(sta.associated for sta in bss.stations)
        assert bss.ap.station_count == 3

    def test_standard_is_configurable(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=1,
                                                 standard=DOT11A)
        assert bss.ap.radio.standard is DOT11A
        assert bss.stations[0].radio.standard is DOT11A

    def test_zero_stations(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=0)
        assert bss.stations == []

    def test_no_associate_option(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=2,
                                                 associate=False)
        assert not any(sta.associated for sta in bss.stations)

    def test_association_timeout_raises(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=1,
                                                 radius_m=100_000.0,
                                                 associate=False)
        with pytest.raises(SimulationError, match="failed to associate"):
            scenarios.associate_all(sim, bss.stations, timeout=1.0)

    def test_associate_all_returns_at_association_time(self, sim):
        """Event-driven associate_all stops the instant the last station
        associates instead of stepping to the next polling boundary."""
        bss = scenarios.build_infrastructure_bss(sim, station_count=2,
                                                 associate=False)
        last_association = []
        for station in bss.stations:
            station.on_associated(
                lambda _bssid: last_association.append(sim.now))
        scenarios.associate_all(sim, bss.stations, timeout=10.0)
        assert all(sta.associated for sta in bss.stations)
        assert sim.now == last_association[-1]

    def test_associate_all_noop_when_already_associated(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=1)
        before = sim.now
        scenarios.associate_all(sim, bss.stations, timeout=5.0)
        assert sim.now == before

    def test_stale_hooks_never_stop_a_later_run(self, sim):
        """A station that associates *after* associate_all timed out
        must not sim.stop() the caller's next run via the stale hook."""
        bss = scenarios.build_infrastructure_bss(sim, station_count=1,
                                                 associate=False)
        # Make association impossible for now by detuning the scan.
        station = bss.stations[0]
        with pytest.raises(SimulationError, match="failed to associate"):
            scenarios.associate_all(sim, [station], timeout=0.01)
        # The station associates later, on its own schedule.
        sim.run(until=sim.now + 5.0)
        assert station.associated
        # The stale hook fired during that run; it must not have
        # stopped it short of the requested horizon.
        target = sim.now + 1.0
        assert sim.run(until=target) == target


class TestAdhocBuilder:
    def test_peers_share_one_bssid(self, sim):
        net = scenarios.build_adhoc_network(sim, station_count=4)
        bssids = {sta.mac.bssid for sta in net.stations}
        assert bssids == {net.ibss.bssid}
        assert all(sta.adhoc for sta in net.stations)

    def test_traffic_flows(self, sim):
        net = scenarios.build_adhoc_network(sim, station_count=2,
                                            standard=DOT11B)
        inbox = []
        net.stations[1].on_receive(lambda s, p, m: inbox.append(p))
        net.stations[0].send(net.stations[1].address, b"peer to peer")
        sim.run(until=1.0)
        assert inbox == [b"peer to peer"]


class TestHiddenTerminalBuilder:
    def test_senders_are_mutually_hidden(self, sim):
        scenario = scenarios.build_hidden_terminal(sim)
        a_to_b = scenario.medium.link_rx_power_dbm(
            scenario.sender_a.radio, scenario.sender_b.radio)
        assert a_to_b == float("-inf")

    def test_both_senders_reach_the_receiver(self, sim):
        scenario = scenarios.build_hidden_terminal(sim)
        for sender in (scenario.sender_a, scenario.sender_b):
            power = scenario.medium.link_rx_power_dbm(
                sender.radio, scenario.receiver.radio)
            assert power > -80.0


class TestEssBuilder:
    def test_aps_in_a_line_sharing_the_ds(self, sim):
        scenario = scenarios.build_ess(sim, ap_count=3, spacing_m=50.0)
        positions = [ap.position.x for ap in scenario.aps]
        assert positions == [0.0, 50.0, 100.0]
        assert all(ap.ds is scenario.ess.ds for ap in scenario.aps)

    def test_beacons_are_staggered(self, sim):
        scenario = scenarios.build_ess(sim, ap_count=2)
        sim.run(until=0.5)
        beacons = [ap.ap_counters.get("beacons") for ap in scenario.aps]
        assert all(count > 0 for count in beacons)
