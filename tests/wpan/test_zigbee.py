"""Tests for the ZigBee / 802.15.4 substrate."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ConfigurationError
from repro.wpan.zigbee import (
    DeviceType,
    Topology,
    ZigbeeNode,
    ZigbeePan,
)


def star_pan(sim, device_count=4, radius=10.0):
    pan = ZigbeePan(sim, Topology.STAR, range_m=30.0)
    coordinator = pan.add_node(
        ZigbeeNode("coord", Position(0, 0, 0), DeviceType.COORDINATOR))
    devices = []
    import math
    for index in range(device_count):
        angle = 2 * math.pi * index / device_count
        node = ZigbeeNode(f"dev{index}",
                          Position(radius * math.cos(angle),
                                   radius * math.sin(angle)),
                          DeviceType.END_DEVICE)
        pan.add_node(node, parent=coordinator)
        devices.append(node)
    return pan, coordinator, devices


def line_mesh(sim, hops=3, spacing=20.0):
    pan = ZigbeePan(sim, Topology.MESH, range_m=25.0)
    coordinator = pan.add_node(
        ZigbeeNode("c", Position(0, 0, 0), DeviceType.COORDINATOR))
    previous = coordinator
    routers = []
    for index in range(hops):
        router = ZigbeeNode(f"r{index}",
                            Position(spacing * (index + 1), 0, 0),
                            DeviceType.ROUTER)
        pan.add_node(router, parent=previous)
        routers.append(router)
        previous = router
    return pan, coordinator, routers


class TestTopologyRules:
    def test_single_coordinator(self, sim):
        pan, _, _ = star_pan(sim)
        with pytest.raises(ConfigurationError):
            pan.add_node(ZigbeeNode("c2", Position(1, 0, 0),
                                    DeviceType.COORDINATOR))

    def test_rfd_cannot_be_a_parent(self, sim):
        pan, coordinator, devices = star_pan(sim)
        orphan = ZigbeeNode("orphan", Position(2, 2, 0),
                            DeviceType.END_DEVICE)
        with pytest.raises(ConfigurationError):
            pan.add_node(orphan, parent=devices[0])

    def test_child_must_be_in_parent_range(self, sim):
        pan, coordinator, _ = star_pan(sim)
        distant = ZigbeeNode("distant", Position(100, 0, 0),
                             DeviceType.ROUTER)
        with pytest.raises(ConfigurationError):
            pan.add_node(distant, parent=coordinator)

    def test_non_coordinator_needs_parent(self, sim):
        pan = ZigbeePan(sim, Topology.STAR)
        with pytest.raises(ConfigurationError):
            pan.add_node(ZigbeeNode("r", Position(0, 0, 0),
                                    DeviceType.ROUTER))


class TestRouting:
    def test_star_routes_through_coordinator(self, sim):
        pan, coordinator, devices = star_pan(sim)
        route = pan.route(devices[0].name, devices[1].name)
        assert route == [devices[0].name, "coord", devices[1].name]

    def test_mesh_shortest_path(self, sim):
        pan, _, routers = line_mesh(sim, hops=3)
        route = pan.route("c", "r2")
        assert route == ["c", "r0", "r1", "r2"]

    def test_cluster_tree_routes_via_common_ancestor(self, sim):
        pan = ZigbeePan(sim, Topology.CLUSTER_TREE, range_m=100.0)
        root = pan.add_node(ZigbeeNode("root", Position(0, 0, 0),
                                       DeviceType.COORDINATOR))
        left = pan.add_node(ZigbeeNode("left", Position(-20, 0, 0),
                                       DeviceType.ROUTER), parent=root)
        right = pan.add_node(ZigbeeNode("right", Position(20, 0, 0),
                                        DeviceType.ROUTER), parent=root)
        leaf_l = pan.add_node(ZigbeeNode("leafL", Position(-30, 0, 0),
                                         DeviceType.END_DEVICE), parent=left)
        leaf_r = pan.add_node(ZigbeeNode("leafR", Position(30, 0, 0),
                                         DeviceType.END_DEVICE), parent=right)
        assert pan.route("leafL", "leafR") == \
            ["leafL", "left", "root", "right", "leafR"]

    def test_mesh_avoids_tree_detour_when_shortcut_exists(self, sim):
        """Mesh routing uses the connectivity graph, not the join tree."""
        pan = ZigbeePan(sim, Topology.MESH, range_m=25.0)
        root = pan.add_node(ZigbeeNode("root", Position(0, 0, 0),
                                       DeviceType.COORDINATOR))
        a = pan.add_node(ZigbeeNode("a", Position(20, 0, 0),
                                    DeviceType.ROUTER), parent=root)
        # b joined via root but sits right next to a.
        b = pan.add_node(ZigbeeNode("b", Position(20, 15, 0),
                                    DeviceType.ROUTER), parent=root)
        route = pan.route("a", "b")
        assert route == ["a", "b"]

    def test_no_route_reported(self, sim):
        pan, _, routers = line_mesh(sim, hops=2)
        island = ZigbeeNode("island", Position(40, 20, 0),
                            DeviceType.ROUTER)
        pan.add_node(island, parent=routers[-1])
        island.position = Position(500, 0, 0)  # drifted away
        pan._graph = None
        assert pan.route("island", "c") is None
        assert not pan.send("island", "c", b"x")


class TestTraffic:
    def test_star_delivery(self, sim):
        pan, coordinator, devices = star_pan(sim)
        inbox = []
        coordinator.on_receive(lambda src, p, meta: inbox.append((src, p)))
        for index, device in enumerate(devices):
            pan.send(device.name, "coord", bytes([index]))
        sim.run(until=2.0)
        assert pan.delivery_ratio == 1.0
        assert sorted(payload[0] for _src, payload in inbox) == [0, 1, 2, 3]

    def test_multihop_mesh_delivery_and_hops(self, sim):
        pan, _, routers = line_mesh(sim, hops=4)
        pan.send("c", "r3", b"hello")
        sim.run(until=2.0)
        assert pan.counters.get("received") == 1
        assert pan.hop_counts.mean == pytest.approx(4.0)

    def test_latency_grows_with_hops(self, sim):
        pan, _, _ = line_mesh(sim, hops=4)
        pan.send("c", "r0", b"near")
        sim.run(until=2.0)
        near_latency = pan.latency.mean
        sim2 = Simulator(seed=99)
        pan2, _, _ = line_mesh(sim2, hops=4)
        pan2.send("c", "r3", b"far")
        sim2.run(until=2.0)
        assert pan2.latency.mean > near_latency

    def test_contention_causes_collisions_but_csma_recovers_most(self, sim):
        pan, coordinator, devices = star_pan(sim, device_count=4)
        for round_index in range(25):
            for device in devices:
                # All four leaves fire simultaneously: contention.
                sim.schedule(round_index * 0.02,
                             lambda d=device: pan.send(d.name, "coord",
                                                       b"burst"))
        sim.run(until=10.0)
        assert pan.counters.get("cca_busy") + \
            pan.counters.get("collisions") > 0
        assert pan.delivery_ratio > 0.9

    def test_meta_carries_hop_count(self, sim):
        pan, _, routers = line_mesh(sim, hops=2)
        metas = []
        routers[-1].on_receive(lambda src, p, meta: metas.append(meta))
        pan.send("c", "r1", b"x")
        sim.run(until=2.0)
        assert metas[0]["hops"] == 2
