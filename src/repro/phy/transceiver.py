"""The radio transceiver: TX/RX state machine, carrier sensing, capture.

A :class:`Radio` sits between the shared :class:`~repro.phy.channel.Medium`
and a MAC.  Its responsibilities:

* transmit frames handed down by the MAC (one at a time — half duplex),
* track every transmission currently incident on the antenna, lock onto
  at most one (reception), and integrate the rest as interference,
* run clear-channel assessment (CCA) and tell the MAC the instant the
  medium turns busy or idle — the DCF backoff freezes on these edges,
* decide frame delivery with the error model on the integrated SINR.

Upcalls to the MAC go through four direct bound-method slots —
:attr:`Radio.on_rx_end`, :attr:`Radio.on_tx_end`,
:attr:`Radio.on_cca_busy`, :attr:`Radio.on_cca_idle` — so the hot path
(every arrival edge of every frame, at every co-channel radio) does a
single attribute load and call instead of walking through a listener
object.  The classic :class:`PhyListener` interface remains as the
convenience surface: assigning :attr:`Radio.listener` rebinds all four
slots from the listener's methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, Optional, Set, TYPE_CHECKING

from ..core.engine import Timer
from ..core.errors import SimulationError
from ..core.topology import Position
from ..core.units import dbm_to_watts, linear_to_db, watts_to_dbm
from .error_models import BerErrorModel, ErrorModel
from .interference import CaptureModel, SinrTracker
from .standards import PhyMode, PhyStandard

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .channel import Medium, Transmission


class RadioState(Enum):
    IDLE = "idle"
    RX = "rx"
    TX = "tx"
    SLEEP = "sleep"


class PhyListener:
    """Upcall interface the MAC implements.  Default methods are no-ops
    so simple listeners only override what they need.

    Assigning an instance to :attr:`Radio.listener` copies its four
    bound methods into the radio's direct upcall slots; overriding a
    listener method *after* assignment therefore requires re-assigning
    the listener (or setting the slot directly)."""

    def phy_rx_end(self, payload: Any, success: bool, snr_db: float,
                   mode: PhyMode) -> None:
        """A locked reception finished; ``success`` reflects the error model."""

    def phy_tx_end(self) -> None:
        """Our own transmission left the antenna completely."""

    def phy_cca_busy(self) -> None:
        """Medium transitioned idle -> busy."""

    def phy_cca_idle(self) -> None:
        """Medium transitioned busy -> idle."""


@dataclass
class RadioConfig:
    """Tunable radio parameters (defaults follow common 802.11 practice)."""

    tx_power_dbm: Optional[float] = None  # None -> standard default
    #: Energy-detection CCA threshold.
    cca_threshold_dbm: float = -82.0
    #: SNR needed to detect/lock a preamble.
    preamble_detection_snr_db: float = 0.0
    capture: CaptureModel = CaptureModel()


class Radio:
    """Half-duplex radio bound to one medium, one standard, one channel."""

    __slots__ = ("name", "medium", "standard", "_position", "_channel_id",
                 "config", "error_model", "_listener", "on_rx_end",
                 "on_tx_end", "on_cca_busy", "on_cca_idle",
                 "on_state_change", "_state", "tx_power_watts",
                 "_noise_watts", "_cca_threshold_watts", "decodable_modes",
                 "_tx_mode_names", "_arrivals", "_locked", "_locked_power",
                 "_locked_tracker", "_cca_busy", "_sim", "_rng", "_trace",
                 "_rx_timer", "_capture", "_snr_cache")

    def __init__(self, name: str, medium: "Medium", standard: PhyStandard,
                 position: Position, channel_id: int = 1,
                 config: Optional[RadioConfig] = None,
                 error_model: Optional[ErrorModel] = None):
        self.name = name
        self.medium = medium
        self.standard = standard
        self._position = position
        self._channel_id = channel_id
        self.config = config if config is not None else RadioConfig()
        self.error_model = error_model if error_model is not None else BerErrorModel()
        # Direct upcall slots — the flattened hot path.  `listener`
        # below rebinds all four from a PhyListener-style object.
        self._listener: PhyListener = PhyListener()
        self.on_rx_end: Callable[[Any, bool, float, PhyMode], None] = \
            self._listener.phy_rx_end
        self.on_tx_end: Callable[[], None] = self._listener.phy_tx_end
        self.on_cca_busy: Callable[[], None] = self._listener.phy_cca_busy
        self.on_cca_idle: Callable[[], None] = self._listener.phy_cca_idle
        #: Optional hook fired with the new state name on every radio
        #: state transition (used by the energy meter).
        self.on_state_change = None
        self._state = RadioState.IDLE
        tx_dbm = (self.config.tx_power_dbm
                  if self.config.tx_power_dbm is not None
                  else standard.default_tx_power_dbm)
        self.tx_power_watts = dbm_to_watts(tx_dbm)
        self._noise_watts = standard.noise_floor_watts
        self._cca_threshold_watts = dbm_to_watts(self.config.cca_threshold_dbm)
        #: Mode names this radio can decode; starts as the standard's own
        #: ladder and may be extended (e.g. a "mixed-mode" 802.11g radio
        #: also decodes 802.11b DSSS/CCK frames).
        self.decodable_modes: Set[str] = {mode.name for mode in standard.modes}
        self._tx_mode_names = {mode.name for mode in standard.modes}
        # Arrivals currently incident on the antenna: transmission -> rx power.
        self._arrivals: Dict["Transmission", float] = {}
        # The transmission currently locked for reception (plus its
        # receive power and SINR tracker, flattened into slots).
        self._locked: Optional["Transmission"] = None
        self._locked_power = 0.0
        self._locked_tracker: Optional[SinrTracker] = None
        self._cca_busy = False
        self._sim = medium.sim
        self._rng = medium.sim.rng.stream(f"radio.{name}")
        self._trace = medium.sim.trace
        self._rx_timer = Timer(medium.sim, self._reception_complete)
        self._capture = self.config.capture
        # Memoized preamble SNR per exact receive power (pure function
        # of power/noise; static links repeat the same few powers).
        self._snr_cache: Dict[float, float] = {}
        medium.attach(self)

    # --- helpers ----------------------------------------------------------

    @property
    def listener(self) -> PhyListener:
        """The registered upcall object (compatibility surface)."""
        return self._listener

    @listener.setter
    def listener(self, value: PhyListener) -> None:
        """Register a listener by copying its methods into the direct
        upcall slots (the hot path never touches the listener object)."""
        self._listener = value
        self.on_rx_end = value.phy_rx_end
        self.on_tx_end = value.phy_tx_end
        self.on_cca_busy = value.phy_cca_busy
        self.on_cca_idle = value.phy_cca_idle

    @property
    def position(self) -> Position:
        return self._position

    @position.setter
    def position(self, value: Position) -> None:
        """Move the radio; invalidates this radio's cached link budgets."""
        if value is self._position:
            return
        self._position = value
        self.medium.invalidate_links(self)

    @property
    def noise_watts(self) -> float:
        return self._noise_watts

    @noise_watts.setter
    def noise_watts(self, value: float) -> None:
        """Change the noise floor; invalidates the memoized preamble
        SNRs (which are pure functions of power / noise)."""
        if value == self._noise_watts:
            return
        self._noise_watts = value
        self._snr_cache.clear()

    @property
    def channel_id(self) -> int:
        return self._channel_id

    @channel_id.setter
    def channel_id(self, value: int) -> None:
        """Retune; invalidates the medium's per-channel receiver lists."""
        if value == self._channel_id:
            return
        self._channel_id = value
        self.medium.invalidate_channels()

    @property
    def state(self) -> RadioState:
        return self._state

    @state.setter
    def state(self, value: RadioState) -> None:
        if value is self._state:
            return
        self._state = value
        if self.on_state_change is not None:
            self.on_state_change(value.value)

    @property
    def sim(self):
        return self._sim

    def allow_decoding(self, standard: PhyStandard) -> None:
        """Additionally decode another standard's modes (b/g coexistence)."""
        self.decodable_modes.update(mode.name for mode in standard.modes)

    def total_incident_power_watts(self) -> float:
        return sum(self._arrivals.values())

    # --- transmit path ------------------------------------------------------

    def transmit(self, payload: Any, size_bits: int, mode: PhyMode) -> float:
        """Send a frame; returns its airtime.  MAC must be idle/decided."""
        if self.state == RadioState.TX:
            raise SimulationError(f"{self.name}: transmit while already in TX")
        if self.state == RadioState.SLEEP:
            raise SimulationError(f"{self.name}: transmit while asleep")
        if mode.name not in self._tx_mode_names:
            raise SimulationError(
                f"{self.name}: mode {mode.name} not in {self.standard.name}")
        # Transmitting aborts any in-progress reception (half duplex).
        if self._locked is not None:
            self._abort_locked()
        self.state = RadioState.TX
        self._update_cca()
        duration = self.standard.frame_airtime(size_bits, mode)
        self.medium.transmit(self, payload, size_bits, mode, duration,
                             self.tx_power_watts)
        self._sim.schedule_fast(duration, self._tx_complete)
        trace = self._trace
        if trace.enabled and trace.wants("phy-tx-start"):
            trace.record(self._sim.now, self.name, "phy-tx-start",
                         bits=size_bits, mode=mode.name)
        return duration

    def _tx_complete(self) -> None:
        self.state = RadioState.IDLE
        self._update_cca()
        self.on_tx_end()

    # --- sleep ------------------------------------------------------------

    def sleep(self) -> None:
        """Power down: no reception, no carrier sense."""
        if self.state == RadioState.TX:
            raise SimulationError(f"{self.name}: cannot sleep mid-transmission")
        if self._locked is not None:
            self._abort_locked()
        self.state = RadioState.SLEEP

    def wake(self) -> None:
        if self.state == RadioState.SLEEP:
            self.state = RadioState.IDLE
            self._update_cca()
            # A MAC that queued frames while asleep never saw a CCA
            # edge (sleeping radios do not contend), so kick it if the
            # medium is quiet — _update_cca above only fires on a
            # busy/idle *transition*, and idle->idle is no transition.
            if not self._cca_busy:
                self.on_cca_idle()

    # --- receive path (called by the Medium) --------------------------------

    def arrival_begins(self, transmission: "Transmission",
                       power_watts: float) -> None:
        """A transmission's energy starts arriving at our antenna.

        The hottest callback in any run (once per frame per co-channel
        radio); ``_update_cca`` is inlined at the tail (KEEP IN SYNC).
        """
        self._arrivals[transmission] = power_watts
        state = self._state
        if state is RadioState.SLEEP:
            return
        if self._locked is not None:
            if self._capture.should_capture(self._locked_power,
                                            power_watts):
                self._abort_locked()
                self._try_lock(transmission, power_watts)
            else:
                self._refresh_interference()
        elif state is RadioState.IDLE:
            self._try_lock(transmission, power_watts)
        state = self._state
        if state is RadioState.TX or state is RadioState.RX:
            busy = True
        else:
            busy = sum(self._arrivals.values()) >= self._cca_threshold_watts
        if busy != self._cca_busy:
            self._cca_busy = busy
            if busy:
                self.on_cca_busy()
            else:
                self.on_cca_idle()

    def arrival_ends(self, transmission: "Transmission") -> None:
        """A transmission's energy stops arriving (its airtime elapsed).

        ``_update_cca`` inlined at the tail (KEEP IN SYNC).
        """
        self._arrivals.pop(transmission, None)
        locked = self._locked
        if locked is not None and locked is not transmission:
            self._refresh_interference()
        state = self._state
        if state is RadioState.TX or state is RadioState.RX:
            busy = True
        elif state is RadioState.SLEEP:
            busy = False
        else:
            busy = sum(self._arrivals.values()) >= self._cca_threshold_watts
        if busy != self._cca_busy:
            self._cca_busy = busy
            if busy:
                self.on_cca_busy()
            else:
                self.on_cca_idle()

    def _try_lock(self, transmission: "Transmission",
                  power_watts: float) -> None:
        # Kept as the historical dB-space comparison deliberately: a
        # linear-domain rewrite disagrees within a few ulp of the
        # threshold, which is enough to desynchronize a seeded run.
        # Memoized on the exact receive power (one log10 per distinct
        # link budget instead of one per arrival).
        snr_db = self._snr_cache.get(power_watts)
        if snr_db is None:
            snr_db = linear_to_db(power_watts / self.noise_watts) \
                if self.noise_watts > 0 else float("inf")
            if len(self._snr_cache) >= 4096:
                self._snr_cache.clear()
            self._snr_cache[power_watts] = snr_db
        if snr_db < self.config.preamble_detection_snr_db:
            return  # too weak to even see a preamble: pure noise
        if transmission.mode.name not in self.decodable_modes:
            return  # foreign PHY: energy only
        sim = self._sim
        interference = sum(self._arrivals.values()) - power_watts
        # _try_lock only ever runs at the instant the energy starts
        # arriving, so the frame's tail lands exactly one airtime later
        # (the propagation delay shifted the whole frame, not its length).
        self._rx_timer.schedule(transmission.duration)
        self._locked = transmission
        self._locked_power = power_watts
        self._locked_tracker = SinrTracker(power_watts, self.noise_watts,
                                           sim._now, interference)
        self.state = RadioState.RX

    def _refresh_interference(self) -> None:
        if self._locked is None:
            return
        interference = sum(self._arrivals.values()) - self._locked_power
        # The locked signal may have already left the arrival table if it
        # ended; guard against a small negative residue.
        self._locked_tracker.set_interference(self._sim._now,
                                              max(interference, 0.0))

    def _abort_locked(self) -> None:
        assert self._locked is not None
        self._rx_timer.cancel()
        self._locked = None
        self._locked_tracker = None
        if self.state == RadioState.RX:
            self.state = RadioState.IDLE

    def _reception_complete(self) -> None:
        transmission = self._locked
        if transmission is None:
            return  # lock was aborted meanwhile (defensive; timer cancels)
        tracker = self._locked_tracker
        self._locked = None
        self._locked_tracker = None
        self.state = RadioState.IDLE
        now = self._sim._now
        snr_db = tracker.sinr_db(now)
        success = self.error_model.frame_survives(
            snr_db, transmission.size_bits, transmission.mode.modulation,
            self._rng)
        trace = self._trace
        if trace.enabled and trace.wants("phy-rx-end"):
            trace.record(now, self.name, "phy-rx-end",
                         ok=success, snr=round(snr_db, 1),
                         mode=transmission.mode.name)
        self._update_cca()
        self.on_rx_end(transmission.payload, success, snr_db,
                       transmission.mode)

    # --- CCA ---------------------------------------------------------------

    def cca_busy(self) -> bool:
        """Clear-channel assessment: is the medium busy right now?

        KEEP IN SYNC with the flattened copies of this predicate in
        :meth:`_update_cca` below and ``DcfMac._medium_idle`` — they
        avoid the method-call layers on the per-arrival hot path.
        """
        state = self._state
        if state is RadioState.TX or state is RadioState.RX:
            return True
        if state is RadioState.SLEEP:
            return False
        return sum(self._arrivals.values()) >= self._cca_threshold_watts

    def _update_cca(self) -> None:
        # cca_busy() inlined: this runs on every arrival edge.
        # KEEP IN SYNC with cca_busy() and DcfMac._medium_idle.
        state = self._state
        if state is RadioState.TX or state is RadioState.RX:
            busy = True
        elif state is RadioState.SLEEP:
            busy = False
        else:
            busy = sum(self._arrivals.values()) >= self._cca_threshold_watts
        if busy == self._cca_busy:
            return
        self._cca_busy = busy
        if busy:
            self.on_cca_busy()
        else:
            self.on_cca_idle()

    # --- introspection -------------------------------------------------------

    def snr_from_dbm(self, rx_power_dbm: float) -> float:
        """SNR this radio would see for a given receive power."""
        return rx_power_dbm - watts_to_dbm(self.noise_watts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Radio {self.name} {self.standard.name} ch={self.channel_id} "
                f"state={self.state.value}>")
