"""Automatic shard partitioning for the parallel executor.

A *cell* is the unit of placement: a named group of radios (a BSS, a
mesh cluster, an emitter field) that lives on one channel inside a
bounded disc.  Two cells **couple** when a transmission in one can be
heard in the other — same channel AND the strongest transmitter's
power, propagated across the *closest approach* between the two discs,
still clears the medium's reception floor.  This is exactly the
reachability the fan-out compiler's floor cull applies per receiver,
lifted to cell granularity; cells on orthogonal channels or beyond each
other's energy floor cannot exchange a single joule and are therefore
free to simulate in different processes with no synchronization at all.

:func:`partition_cells` builds the coupling graph, collapses coupled
cells into atomic groups (a group can never be split across shards —
within-group interaction is tight and belongs in one event loop), packs
groups onto ``workers`` shards balanced by declared cell weight, and
derives the conservative **lookahead** for every coupled cross-shard
pair: the minimum possible propagation delay between the two cells
(closest-approach distance over the speed of light).  A shard may
safely run ``lookahead`` seconds past a coupled neighbour's fenced
clock, because nothing the neighbour transmits can arrive sooner — the
conservative-synchronization bound of the executor.

An explicit ``manual`` override maps cell names to shard indices for
experiments that want a specific layout; couplings are still computed,
so a manual split of a coupled pair simply yields a finite lookahead
instead of an error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.topology import Position
from ..core.units import SPEED_OF_LIGHT, dbm_to_watts
from ..phy.propagation import PropagationModel

#: Closest-approach distances are clamped to this floor so overlapping
#: cell discs probe the propagation model at a sane reference distance
#: (and the derived lookahead never divides by zero).
MIN_COUPLING_DISTANCE_M = 1.0


@dataclass(frozen=True)
class CellSpec:
    """One partitionable cell of a scenario.

    ``build`` is called inside whichever process the cell lands in,
    with a :class:`~repro.parallel.executor.CellBuild` context (sim,
    medium, namespaced RNG, deterministic addresses); it must return a
    zero-argument callable producing the cell's final stats dict (plain
    picklable values).  ``center``/``radius_m`` bound every radio the
    builder creates — the partitioner's reachability probe assumes no
    cell hardware lives outside the disc.  ``max_tx_power_dbm`` is the
    strongest transmitter the cell will ever key (used only for the
    coupling probe; overstating it is safe, understating it is not).
    ``weight`` steers load balancing (roughly: event rate; station
    count is a fine proxy).
    """

    name: str
    channel: int
    center: Position
    radius_m: float
    build: Callable[..., Callable[[], Dict]]
    weight: float = 1.0
    max_tx_power_dbm: float = 20.0


@dataclass(frozen=True)
class Coupling:
    """A coupled (mutually audible) cell pair and its lookahead."""

    cell_a: str
    cell_b: str
    channel: int
    distance_m: float   # closest approach between the two discs
    delay_s: float      # distance_m / c: the conservative lookahead


@dataclass(frozen=True)
class ShardPlan:
    """The output of :func:`partition_cells`, consumed by the executor.

    ``shards`` is the cell assignment (cells sorted by name inside each
    shard); ``lookahead`` maps each *directed* coupled cross-shard pair
    to the minimum propagation delay between them; ``export_channels``
    lists, per shard, the channels whose transmissions must be exported
    as boundary records; ``routes`` maps ``(source_shard, channel)`` to
    the destination shards that must receive those records.
    """

    cells: Tuple[CellSpec, ...]
    shards: Tuple[Tuple[CellSpec, ...], ...]
    shard_of: Mapping[str, int]
    couplings: Tuple[Coupling, ...]
    lookahead: Mapping[Tuple[int, int], float]
    export_channels: Tuple[FrozenSet[int], ...]
    routes: Mapping[Tuple[int, int], Tuple[int, ...]]

    @property
    def coupled(self) -> bool:
        """True when any cross-shard pair exchanges boundary arrivals."""
        return bool(self.lookahead)

    @property
    def min_lookahead(self) -> float:
        """The tightest cross-shard synchronization bound (inf when
        fully decoupled: every shard runs to the horizon in one step)."""
        return min(self.lookahead.values(), default=float("inf"))

    def incoming(self, shard: int) -> Dict[int, float]:
        """``{source_shard: lookahead_s}`` for couplings into ``shard``."""
        return {src: delay for (src, dst), delay in self.lookahead.items()
                if dst == shard}

    def index_of(self, cell_name: str) -> int:
        """Global (sorted-by-name) index of a cell — the deterministic
        basis for per-cell MAC address blocks."""
        for index, cell in enumerate(self.cells):
            if cell.name == cell_name:
                return index
        raise KeyError(cell_name)

    def describe(self) -> Dict:
        """Canonical, JSON-ready digest (pinned key order is the
        caller's job via ``sort_keys``)."""
        return {
            "shards": [[cell.name for cell in shard]
                       for shard in self.shards],
            "channels": {cell.name: cell.channel for cell in self.cells},
            "couplings": [
                {"a": c.cell_a, "b": c.cell_b, "chan": c.channel,
                 "dist_m": repr(c.distance_m), "delay_s": repr(c.delay_s)}
                for c in self.couplings],
            "lookahead": {f"{src}->{dst}": repr(delay)
                          for (src, dst), delay
                          in sorted(self.lookahead.items())},
        }


def _closest_approach(a: CellSpec, b: CellSpec) -> float:
    gap = a.center.distance_to(b.center) - a.radius_m - b.radius_m
    return max(gap, MIN_COUPLING_DISTANCE_M)


def find_couplings(cells: Tuple[CellSpec, ...],
                   propagation: PropagationModel,
                   reception_floor_dbm: float) -> Tuple[Coupling, ...]:
    """Every mutually audible cell pair, in (name, name) sorted order.

    The probe is conservative in the right direction: it evaluates the
    propagation model across the closest approach between the discs at
    the stronger cell's maximum transmit power, so any real radio pair
    (necessarily at >= that distance, <= that power) is audible only if
    the probe is.
    """
    floor_watts = dbm_to_watts(reception_floor_dbm)
    origin = Position(0.0, 0.0, 0.0)
    couplings: List[Coupling] = []
    for i, a in enumerate(cells):
        for b in cells[i + 1:]:
            if a.channel != b.channel:
                continue
            gap = _closest_approach(a, b)
            power_watts = dbm_to_watts(
                max(a.max_tx_power_dbm, b.max_tx_power_dbm))
            rx_watts = propagation.received_power_watts(
                power_watts, origin, Position(gap, 0.0, 0.0))
            if rx_watts >= floor_watts:
                couplings.append(Coupling(a.name, b.name, a.channel, gap,
                                          gap / SPEED_OF_LIGHT))
    return tuple(couplings)


def _union_groups(cells: Tuple[CellSpec, ...],
                  couplings: Tuple[Coupling, ...]) -> List[List[CellSpec]]:
    """Connected components of the coupling graph (union-find)."""
    parent = {cell.name: cell.name for cell in cells}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    for coupling in couplings:
        root_a, root_b = find(coupling.cell_a), find(coupling.cell_b)
        if root_a != root_b:
            # Deterministic union direction: smaller name wins.
            if root_a < root_b:
                parent[root_b] = root_a
            else:
                parent[root_a] = root_b
    groups: Dict[str, List[CellSpec]] = {}
    for cell in cells:
        groups.setdefault(find(cell.name), []).append(cell)
    # Cells are already name-sorted; group order follows each group's
    # first member so the whole structure is reproducible.
    return [groups[root] for root in sorted(groups)]


def partition_cells(cells, propagation: PropagationModel, *,
                    workers: int,
                    reception_floor_dbm: float = -110.0,
                    manual: Optional[Mapping[str, int]] = None) -> ShardPlan:
    """Partition ``cells`` into at most ``workers`` shards.

    Automatic mode groups coupled cells (they must share an event
    loop... unless ``manual`` says otherwise) and greedy-packs the
    groups onto shards by descending weight, heaviest group to the
    least-loaded shard — the classic LPT balance heuristic, fully
    deterministic here because every tie breaks on sorted names.

    ``manual`` maps every cell name to an explicit shard index in
    ``range(workers)``; coupled cells split across shards then
    synchronize through the executor's conservative lookahead instead
    of sharing a heap.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    ordered = tuple(sorted(cells, key=lambda cell: cell.name))
    if not ordered:
        raise ConfigurationError("no cells to partition")
    names = [cell.name for cell in ordered]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate cell names in {names}")
    couplings = find_couplings(ordered, propagation, reception_floor_dbm)

    if manual is not None:
        missing = [name for name in names if name not in manual]
        if missing:
            raise ConfigurationError(
                f"manual partition is missing cells: {missing}")
        bogus = sorted(set(manual) - set(names))
        if bogus:
            raise ConfigurationError(
                f"manual partition names unknown cells: {bogus}")
        out_of_range = {name: idx for name, idx in manual.items()
                        if not 0 <= idx < workers}
        if out_of_range:
            raise ConfigurationError(
                f"manual shard indices out of range(workers={workers}): "
                f"{out_of_range}")
        shard_count = max(manual.values()) + 1
        assignment = {name: manual[name] for name in names}
    else:
        groups = _union_groups(ordered, couplings)
        shard_count = min(workers, len(groups))
        # LPT: heaviest group first, onto the least-loaded shard.
        loads = [0.0] * shard_count
        assignment = {}
        order = sorted(range(len(groups)),
                       key=lambda g: (-sum(c.weight for c in groups[g]),
                                      groups[g][0].name))
        for g in order:
            shard = min(range(shard_count), key=lambda s: (loads[s], s))
            for cell in groups[g]:
                assignment[cell.name] = shard
            loads[shard] += sum(c.weight for c in groups[g])

    shards: List[List[CellSpec]] = [[] for _ in range(shard_count)]
    for cell in ordered:
        shards[assignment[cell.name]].append(cell)
    if any(not shard for shard in shards):
        raise ConfigurationError(
            "manual partition leaves a shard empty (indices must be "
            "contiguous from 0)")

    lookahead: Dict[Tuple[int, int], float] = {}
    export: List[set] = [set() for _ in range(shard_count)]
    routes: Dict[Tuple[int, int], set] = {}
    for coupling in couplings:
        s_a = assignment[coupling.cell_a]
        s_b = assignment[coupling.cell_b]
        if s_a == s_b:
            continue
        for src, dst in ((s_a, s_b), (s_b, s_a)):
            key = (src, dst)
            lookahead[key] = min(lookahead.get(key, float("inf")),
                                 coupling.delay_s)
            export[src].add(coupling.channel)
            routes.setdefault((src, coupling.channel), set()).add(dst)

    return ShardPlan(
        cells=ordered,
        shards=tuple(tuple(shard) for shard in shards),
        shard_of=dict(assignment),
        couplings=couplings,
        lookahead=lookahead,
        export_channels=tuple(frozenset(chans) for chans in export),
        routes={key: tuple(sorted(dests))
                for key, dests in sorted(routes.items())},
    )
