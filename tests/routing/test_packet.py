"""Mesh packet format round-trips and classification."""

import pytest

from repro.core.errors import FrameError
from repro.mac.addresses import MacAddress
from repro.routing.packet import (
    FLAG_FROM_DS,
    INFINITE_METRIC,
    MESH_HEADER_SIZE,
    MeshHeader,
    decode_dsdv_update,
    decode_mesh,
    encode_dsdv_update,
)

A = MacAddress.from_string("02:00:00:00:00:0a")
B = MacAddress.from_string("02:00:00:00:00:0b")
C = MacAddress.from_string("02:00:00:00:00:0c")


class TestMeshHeader:
    def test_roundtrip(self):
        header = MeshHeader(A, B, sequence=7, ttl=16, hops=3,
                            flags=FLAG_FROM_DS)
        kind, decoded, body = decode_mesh(header.encode() + b"payload")
        assert kind == "data"
        assert decoded == header
        assert body == b"payload"

    def test_forwarded_moves_ttl_and_hops(self):
        header = MeshHeader(A, B, sequence=1, ttl=5, hops=1)
        relayed = header.forwarded()
        assert (relayed.ttl, relayed.hops) == (4, 2)
        # Addressing and identity are immutable across hops.
        assert (relayed.origin, relayed.destination, relayed.sequence) == \
            (A, B, 1)

    def test_header_size_constant(self):
        assert len(MeshHeader(A, B, 0, ttl=1).encode()) == MESH_HEADER_SIZE

    def test_ttl_out_of_range_rejected(self):
        with pytest.raises(FrameError):
            MeshHeader(A, B, 0, ttl=256)

    def test_foreign_bytes_are_not_mesh(self):
        assert decode_mesh(b"") is None
        assert decode_mesh(b"\x00\x01") is None
        assert decode_mesh(bytes(64)) is None

    def test_truncated_data_header_is_not_mesh(self):
        header = MeshHeader(A, B, 0, ttl=4).encode()
        assert decode_mesh(header[:MESH_HEADER_SIZE - 1]) is None


class TestDsdvUpdate:
    def test_roundtrip(self):
        entries = [(A, 0, 42), (B, 3, 17), (C, INFINITE_METRIC, 9)]
        payload = encode_dsdv_update(entries)
        kind, header, body = decode_mesh(payload)
        assert kind == "control" and header is None
        assert decode_dsdv_update(body) == entries

    def test_empty_update(self):
        assert decode_dsdv_update(encode_dsdv_update([])) == []

    def test_metric_out_of_range_rejected(self):
        with pytest.raises(FrameError):
            encode_dsdv_update([(A, 256, 0)])

    def test_truncated_update_rejected(self):
        payload = encode_dsdv_update([(A, 1, 2), (B, 2, 4)])
        assert decode_dsdv_update(payload[:-1]) is None
