"""Integration: WEP shared-key authentication over the simulated air."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ProtocolError
from repro.net.ap import AccessPoint
from repro.net.elements import AUTH_SHARED_KEY
from repro.net.station import Station, StationState
from repro.phy.channel import Medium
from repro.phy.propagation import LogDistance
from repro.phy.standards import DOT11B

KEY = b"\x0a\x0b\x0c\x0d\x0e"
WRONG = b"\x01\x02\x03\x04\x05"


def build(sim, station_key, ap_key=KEY):
    medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
    ap = AccessPoint(sim, medium, DOT11B, Position(0, 0, 0), name="ap",
                     ssid="wepnet", privacy=True,
                     auth_algorithm=AUTH_SHARED_KEY, wep_key=ap_key)
    sta = Station(sim, medium, DOT11B, Position(8, 0, 0), name="sta",
                  auth_algorithm=AUTH_SHARED_KEY, wep_key=station_key)
    ap.start_beaconing()
    sta.associate("wepnet")
    return ap, sta


class TestSharedKeyOverTheAir:
    def test_matching_keys_associate(self, sim):
        ap, sta = build(sim, station_key=KEY)
        sim.run(until=3.0)
        assert sta.state == StationState.ASSOCIATED
        assert ap.ap_counters.get("auth_challenges") >= 1
        assert ap.ap_counters.get("auth_ok") >= 1

    def test_wrong_key_refused(self, sim):
        ap, sta = build(sim, station_key=WRONG)
        sim.run(until=3.0)
        assert sta.state != StationState.ASSOCIATED
        assert ap.ap_counters.get("auth_refused") >= 1
        assert not ap.is_associated(sta.address)

    def test_open_station_refused_by_shared_key_ap(self, sim):
        medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
        ap = AccessPoint(sim, medium, DOT11B, Position(0, 0, 0),
                         ssid="wepnet", auth_algorithm=AUTH_SHARED_KEY,
                         wep_key=KEY)
        sta = Station(sim, medium, DOT11B, Position(8, 0, 0))  # open auth
        ap.start_beaconing()
        sta.associate("wepnet")
        sim.run(until=3.0)
        assert not sta.associated

    def test_configuration_validation(self, sim):
        medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
        with pytest.raises(ProtocolError):
            AccessPoint(sim, medium, DOT11B, Position(0, 0, 0),
                        auth_algorithm=AUTH_SHARED_KEY)
        with pytest.raises(ProtocolError):
            Station(sim, medium, DOT11B, Position(1, 0, 0),
                    auth_algorithm=AUTH_SHARED_KEY)

    def test_data_flows_after_shared_key_auth(self, sim):
        ap, sta = build(sim, station_key=KEY)
        sim.run(until=3.0)
        inbox = []
        ap.on_receive(lambda src, p, meta: inbox.append(p))
        sta.send(ap.address, b"post-auth data")
        sim.run(until=4.0)
        assert inbox == [b"post-auth data"]
