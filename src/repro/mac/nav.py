"""Network Allocation Vector — virtual carrier sensing.

Every 802.11 frame's duration field announces how long the remainder of
its frame exchange will occupy the medium.  Stations that overhear a
frame *not addressed to them* set their NAV accordingly and treat the
medium as busy until it expires, even if the air goes quiet — this is
what protects an ACK (or a CTS-reserved data frame) from a station that
cannot hear the other end of the exchange.

The NAV only ever moves forward: a shorter overheard duration never
truncates a longer reservation already in place.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Callable, Optional

from ..core.engine import Simulator, Timer


class Nav:
    """Per-station NAV timer with an expiry callback.

    Every overheard reservation extends the NAV and re-anchors the
    expiry, so the timer churns on every overheard frame in a busy
    cell; it therefore rides on the kernel's reusable
    :class:`~repro.core.engine.Timer` (re-anchor without a fresh
    :class:`~repro.core.engine.EventHandle` per update).
    """

    __slots__ = ("_sim", "_until", "_on_expire", "_timer")

    def __init__(self, sim: Simulator,
                 on_expire: Optional[Callable[[], None]] = None):
        self._sim = sim
        self._until = 0.0
        self._on_expire = on_expire
        self._timer = Timer(sim, self._fire)

    @property
    def busy(self) -> bool:
        """True while the NAV reservation is in the future."""
        return self._sim._now < self._until

    @property
    def until(self) -> float:
        return self._until

    def set_until(self, time: float) -> None:
        """Extend the NAV to ``time`` (ignored if it would shorten it)."""
        if time <= self._until:
            return
        self._until = time
        if self._on_expire is not None:
            # Timer.schedule inlined (KEEP IN SYNC with engine.Timer):
            # this runs once per overheard frame in a busy cell.  The
            # armed deadline is now + max(time - now, 0.0), the same
            # floats schedule(delay) produced; frame duration fields
            # are finite, so the bounds check cannot fire.
            sim = self._sim
            now = sim._now
            delay = time - now
            deadline = now + (delay if delay > 0.0 else 0.0)
            timer = self._timer
            if timer._armed:
                sim._cancelled_events += 1
            else:
                timer._armed = True
            timer._version += 1
            timer._time = deadline
            sim._scheduled += 1
            _heappush(sim._heap,
                      (deadline, sim._next_seq(), timer, timer._version))

    def set_duration(self, duration: float) -> None:
        """Extend the NAV ``duration`` seconds from now."""
        self.set_until(self._sim._now + duration)

    def clear(self) -> None:
        """Cancel the reservation (e.g. CF-End, or test teardown)."""
        self._until = 0.0
        self._timer.cancel()

    def _fire(self) -> None:
        if not self.busy and self._on_expire is not None:
            self._on_expire()
