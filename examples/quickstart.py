#!/usr/bin/env python3
"""Quickstart: a two-station infrastructure WLAN in ~30 lines.

Builds an 802.11g BSS (one AP, two stations), lets the stations scan,
authenticate and associate through the real management exchanges, then
pushes a constant-bit-rate flow from one station to the other — relayed
through the AP, as infrastructure mode requires — and prints the
delivery statistics.

Run:  python examples/quickstart.py
"""

from repro import Simulator, scenarios
from repro.traffic.generators import CbrSource
from repro.traffic.sink import TrafficSink


def main() -> None:
    sim = Simulator(seed=42)

    # One AP at the origin, two stations on a 15 m circle; beacons,
    # scanning, authentication and association all actually happen.
    bss = scenarios.build_infrastructure_bss(sim, station_count=2,
                                             radius_m=15.0)
    alice, bob = bss.stations
    print(f"associated: {alice.name} and {bob.name} "
          f"with AP {bss.ap.bssid} (SSID {bss.ap.ssid!r})")

    # Attach a measurement sink at Bob and a 1 Mb/s CBR source at Alice.
    sink = TrafficSink(sim)
    bob.on_receive(sink)
    source = CbrSource.at_rate(sim, lambda p: alice.send(bob.address, p),
                               packet_bytes=1000, rate_bps=1_000_000)

    start = sim.now
    sim.run(until=start + 5.0)

    flow = sink.flow(source.flow_id)
    print(f"sent {source.generated} packets, "
          f"received {flow.received}, lost {flow.lost}")
    print(f"goodput: {flow.goodput_bps() / 1e6:.2f} Mb/s, "
          f"mean delay: {flow.delay.mean * 1e3:.2f} ms, "
          f"p99 delay: {flow.delay.percentile(0.99) * 1e3:.2f} ms")
    print(f"AP relayed {bss.ap.ap_counters.get('intra_bss_relays')} MSDUs")


if __name__ == "__main__":
    main()
