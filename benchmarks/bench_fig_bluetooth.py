"""E3 — Fig 1.2: Bluetooth piconets and the scatternet.

Series 1: piconet aggregate and per-slave throughput as the number of
active slaves grows from 1 to the 7-slave maximum — the "up to 8 active
devices ... share up to 720 Kbps" claim.

Series 2: the scatternet relay of Fig 1.2 (the master of piconet A is a
slave in piconet B): end-to-end relayed throughput through the bridge,
compared against the single-piconet rate.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core import Position, Simulator
from repro.core.units import to_mbps
from repro.wpan.bluetooth import (
    BluetoothDevice,
    DH5,
    Piconet,
    ScatternetBridge,
)

HORIZON = 4.0


def run_piconet(slave_count, seed=1):
    sim = Simulator(seed=seed)
    master = BluetoothDevice("m", Position(0, 0, 0))
    piconet = Piconet(sim, master)
    slaves = []
    for index in range(slave_count):
        slave = BluetoothDevice(f"s{index}", Position(1 + index, 0, 0))
        piconet.add_slave(slave)
        slaves.append(slave)
    piconet.start()
    for slave in slaves:
        piconet.queue_payload(slave, bytes(1_000_000))
    sim.run(until=HORIZON)
    per_slave = [slave.counters.get("rx_bytes") * 8 / HORIZON
                 for slave in slaves]
    return sum(per_slave), min(per_slave), max(per_slave)


def run_scatternet(seed=2):
    sim = Simulator(seed=seed)
    master_a = BluetoothDevice("masterA", Position(0, 0, 0))
    piconet_a = Piconet(sim, master_a)
    bridge = BluetoothDevice("bridge", Position(5, 0, 0))
    piconet_a.add_slave(bridge)
    piconet_b = Piconet(sim, bridge)  # bridge is master of B
    slave_b = BluetoothDevice("slaveB", Position(9, 0, 0))
    piconet_b.add_slave(slave_b)
    relay = ScatternetBridge(sim, bridge, piconet_a, piconet_b)
    relay.add_route("masterA", via=piconet_b, destination=slave_b)
    piconet_a.start()
    piconet_b.start()
    piconet_a.queue_payload(bridge, bytes(1_000_000))
    sim.run(until=HORIZON)
    return slave_b.counters.get("rx_bytes") * 8 / HORIZON


def run_experiment():
    piconet_rows = []
    for slaves in range(1, 8):
        total, low, high = run_piconet(slaves)
        piconet_rows.append([slaves, to_mbps(total) * 1000,
                             to_mbps(low) * 1000, to_mbps(high) * 1000])
    relay_rate = run_scatternet()
    return piconet_rows, relay_rate


def test_fig_bluetooth(benchmark, record_result):
    piconet_rows, relay_rate = benchmark.pedantic(run_experiment,
                                                  rounds=1, iterations=1)
    text = render_table(
        "E3: Bluetooth piconet capacity sharing (Fig 1.2)",
        ["active slaves", "aggregate kb/s", "min slave kb/s",
         "max slave kb/s"],
        piconet_rows, formats=[None, ".1f", ".1f", ".1f"])
    text += ("\n\nScatternet relay through the Fig 1.2 bridge: "
             f"{relay_rate / 1e3:.1f} kb/s "
             "(bridge time-shares between both piconets)")
    record_result("E3_bluetooth", text)

    # The ~720 kb/s shared-capacity claim: aggregate stays flat near
    # 720 kb/s whatever the slave count...
    for row in piconet_rows:
        assert row[1] == pytest.approx(720.0, rel=0.06), row
    # ...while the per-slave share shrinks roughly as 1/k.
    single = piconet_rows[0][2]
    seven = piconet_rows[6][2]
    assert seven == pytest.approx(single / 7.0, rel=0.15)
    # Fairness of pure round-robin polling.
    for row in piconet_rows:
        assert row[3] - row[2] < 25.0
    # The relay moves data, but below the single-piconet rate.
    assert 0 < relay_rate < 720_000
