"""Mesh packet formats: the L3 forwarding header and DSDV updates.

The mesh layer rides *inside* 802.11 MSDUs: every mesh packet is an
ordinary direct (IBSS-style) data frame addressed to the next hop, whose
payload starts with one of two magic-tagged structures:

* :class:`MeshHeader` + app payload — a forwarded data packet.  The
  header carries the true origin and final destination (the MAC
  addresses the per-hop frames cannot express), a hop-limit TTL, the
  hop count accumulated so far, and an origin-scoped sequence number
  used for duplicate suppression.
* a DSDV routing update — a flat list of ``(destination, metric,
  sequence)`` advertisements broadcast one hop.

Anything that does not start with a known magic is not mesh traffic and
is passed through untouched, so mesh and plain ad-hoc payloads can share
a station.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..core.errors import FrameError
from ..mac.addresses import MacAddress

#: Magic prefixes distinguishing mesh data, mesh control, and foreign bytes.
MESH_DATA_MAGIC = 0x4D455348   # "MESH"
MESH_CTRL_MAGIC = 0x44534456   # "DSDV"

#: magic, ttl, hops, flags, origin, destination, sequence.
_DATA_HEADER = struct.Struct("!IBBB6s6sI")
MESH_HEADER_SIZE = _DATA_HEADER.size

#: magic, entry count.
_CTRL_HEADER = struct.Struct("!IH")
#: destination, metric, sequence.
_CTRL_ENTRY = struct.Struct("!6sBI")

#: Set on packets injected from the wired side through a gateway bridge;
#: a route miss on such a packet queues instead of bouncing back into
#: the distribution system (which would ping-pong).
FLAG_FROM_DS = 0x01
#: Set when a relay retransmits a packet after a link failure: the
#: repaired route may legitimately revisit nodes that already forwarded
#: this (origin, sequence), so duplicate suppression must let it
#: through (the TTL still bounds any loop).
FLAG_REROUTED = 0x02

#: Metric value meaning "unreachable" in DSDV advertisements.
INFINITE_METRIC = 0xFF


@dataclass(frozen=True)
class MeshHeader:
    """The per-packet forwarding header prepended to every mesh MSDU."""

    origin: MacAddress
    destination: MacAddress
    sequence: int
    ttl: int
    hops: int = 1
    flags: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.ttl <= 0xFF:
            raise FrameError(f"TTL out of range: {self.ttl}")
        if not 0 <= self.hops <= 0xFF:
            raise FrameError(f"hop count out of range: {self.hops}")

    def encode(self) -> bytes:
        return _DATA_HEADER.pack(MESH_DATA_MAGIC, self.ttl, self.hops,
                                 self.flags, self.origin.to_bytes(),
                                 self.destination.to_bytes(),
                                 self.sequence & 0xFFFFFFFF)

    def forwarded(self) -> "MeshHeader":
        """The header as retransmitted by a relay: TTL down, hops up."""
        return replace(self, ttl=self.ttl - 1, hops=self.hops + 1)


def decode_mesh(payload: bytes
                ) -> Optional[Tuple[str, Optional[MeshHeader], bytes]]:
    """Classify an MSDU payload.

    Returns ``("data", header, body)`` for a forwarded packet,
    ``("control", None, body)`` for a routing update (``body`` is the
    still-encoded update), or ``None`` for non-mesh bytes.
    """
    if len(payload) < 4:
        return None
    magic = int.from_bytes(payload[:4], "big")
    if magic == MESH_DATA_MAGIC:
        if len(payload) < MESH_HEADER_SIZE:
            return None
        _, ttl, hops, flags, origin, destination, sequence = \
            _DATA_HEADER.unpack_from(payload)
        header = MeshHeader(MacAddress.from_bytes(origin),
                            MacAddress.from_bytes(destination),
                            sequence, ttl, hops, flags)
        return "data", header, payload[MESH_HEADER_SIZE:]
    if magic == MESH_CTRL_MAGIC:
        return "control", None, payload
    return None


#: One DSDV advertisement: (destination, metric, sequence).
RouteAdvert = Tuple[MacAddress, int, int]


def encode_dsdv_update(entries: List[RouteAdvert]) -> bytes:
    """Serialize a full-table DSDV dump."""
    parts = [_CTRL_HEADER.pack(MESH_CTRL_MAGIC, len(entries))]
    for destination, metric, sequence in entries:
        if not 0 <= metric <= INFINITE_METRIC:
            raise FrameError(f"metric out of range: {metric}")
        parts.append(_CTRL_ENTRY.pack(destination.to_bytes(), metric,
                                      sequence & 0xFFFFFFFF))
    return b"".join(parts)


def decode_dsdv_update(payload: bytes) -> Optional[List[RouteAdvert]]:
    """Parse a DSDV dump; None when the payload is not one."""
    if len(payload) < _CTRL_HEADER.size:
        return None
    magic, count = _CTRL_HEADER.unpack_from(payload)
    if magic != MESH_CTRL_MAGIC:
        return None
    expected = _CTRL_HEADER.size + count * _CTRL_ENTRY.size
    if len(payload) < expected:
        return None
    entries: List[RouteAdvert] = []
    offset = _CTRL_HEADER.size
    for _ in range(count):
        destination, metric, sequence = _CTRL_ENTRY.unpack_from(payload,
                                                                offset)
        entries.append((MacAddress.from_bytes(destination), metric,
                        sequence))
        offset += _CTRL_ENTRY.size
    return entries
