"""WMAN substrate: the WiMAX-like scheduled point-to-multipoint MAC."""

from .wimax import (
    BURST_PROFILES,
    DL_FRACTION,
    FRAME_TIME,
    FRAMING_EFFICIENCY,
    SubscriberStation,
    WimaxBand,
    WimaxBaseStation,
)

__all__ = [
    "BURST_PROFILES",
    "DL_FRACTION",
    "FRAME_TIME",
    "FRAMING_EFFICIENCY",
    "SubscriberStation",
    "WimaxBand",
    "WimaxBaseStation",
]
