"""Tests for the UWB link model (Fig 1.5 behaviour)."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ConfigurationError, LinkError
from repro.core.units import mbps
from repro.wpan.uwb import EUROPE, USA, UwbLink


def link_at(sim, distance, domain=USA):
    return UwbLink(sim, Position(0, 0, 0), Position(distance, 0, 0),
                   domain=domain)


class TestRegulatoryDomains:
    def test_us_allocation(self):
        assert USA.total_bandwidth_hz == pytest.approx(7.5e9)

    def test_europe_is_split_and_smaller(self):
        assert len(EUROPE.bands_hz) == 2
        assert EUROPE.total_bandwidth_hz < USA.total_bandwidth_hz

    def test_channel_cannot_exceed_allocation(self, sim):
        with pytest.raises(ConfigurationError):
            UwbLink(sim, Position(0, 0, 0), Position(1, 0, 0),
                    domain=EUROPE, channel_bandwidth_hz=8e9)


class TestRateProfile:
    """The text's numbers: 480 Mb/s close in, 110 Mb/s out to ~10 m."""

    def test_480_at_two_meters(self, sim):
        assert link_at(sim, 2.0).rate_bps() == mbps(480)

    def test_110_or_better_at_ten_meters(self, sim):
        assert link_at(sim, 10.0).rate_bps() >= mbps(110)

    def test_dead_at_twenty_meters(self, sim):
        assert link_at(sim, 20.0).rate_bps() == 0.0

    def test_rate_monotone_in_distance(self, sim):
        rates = [link_at(sim, d).rate_bps()
                 for d in (0.5, 1, 2, 4, 6, 8, 10, 14)]
        assert rates == sorted(rates, reverse=True)

    def test_max_range_for_rate_inverts_profile(self, sim):
        link = link_at(sim, 1.0)
        range_480 = link.max_range_for_rate(mbps(480))
        range_110 = link.max_range_for_rate(mbps(110))
        assert 1.0 < range_480 < range_110
        assert link.rate_bps(range_110 * 0.99) >= mbps(110)
        assert link.rate_bps(range_110 * 1.05) < mbps(110)


class TestTransfer:
    def test_transfer_time_uses_current_rate(self, sim):
        close = link_at(sim, 1.0)
        far = link_at(sim, 9.0)
        assert close.transfer_time(10_000_000) < \
            far.transfer_time(10_000_000)

    def test_out_of_range_transfer_raises(self, sim):
        with pytest.raises(LinkError):
            link_at(sim, 30.0).transfer_time(1000)

    def test_transfer_completes(self, sim):
        link = link_at(sim, 2.0)
        done = []
        link.transfer(1_000_000, on_done=done.append)
        sim.run(until=1.0)
        assert done == [1_000_000]

    def test_usb2_class_transfer_speed(self, sim):
        """A 100 MB file at 2 m moves in a few seconds — cable-class."""
        link = link_at(sim, 2.0)
        assert link.transfer_time(100_000_000) < 3.0
