"""End-to-end integration: traffic over a full infrastructure BSS."""

import pytest

from repro import scenarios
from repro.core import Simulator
from repro.traffic.generators import CbrSource
from repro.traffic.sink import TrafficSink


class TestCbrOverBss:
    def test_cbr_flow_station_to_station(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=2,
                                                 radius_m=15.0)
        src, dst = bss.stations
        sink = TrafficSink(sim)
        dst.on_receive(sink)
        start = sim.now
        source = CbrSource(sim, lambda p: src.send(dst.address, p),
                           packet_bytes=500, interval=0.01,
                           stop_after=100)
        sim.run(until=start + 5.0)
        flow = sink.flow(source.flow_id)
        assert flow is not None
        assert flow.received == 100
        assert flow.lost == 0
        # Relayed through the AP: delay is positive but small.
        assert 0.0 < flow.delay.mean < 0.05

    def test_offered_load_below_capacity_is_carried(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=3,
                                                 radius_m=10.0)
        sinks = []
        sources = []
        start = sim.now
        horizon = 4.0
        for sender, receiver in zip(bss.stations, bss.stations[1:] +
                                    bss.stations[:1]):
            sink = TrafficSink(sim)
            receiver.on_receive(sink)
            sinks.append(sink)
            sources.append(CbrSource(
                sim, lambda p, s=sender, r=receiver: s.send(r.address, p),
                packet_bytes=400, interval=0.02))
        sim.run(until=start + horizon)
        delivered = sum(sink.total_received for sink in sinks)
        offered = sum(source.generated for source in sources)
        assert delivered / offered > 0.95

    def test_delay_grows_with_congestion(self, sim):
        """Saturating one sender inflates everyone's queueing delay."""
        bss = scenarios.build_infrastructure_bss(sim, station_count=2,
                                                 radius_m=10.0)
        src, dst = bss.stations
        sink = TrafficSink(sim)
        dst.on_receive(sink)
        start = sim.now
        light = CbrSource(sim, lambda p: src.send(dst.address, p),
                          packet_bytes=500, interval=0.05)
        sim.run(until=start + 2.0)
        light_delay = sink.flow(light.flow_id).delay.mean
        light.stop()
        heavy = CbrSource(sim, lambda p: src.send(dst.address, p),
                          packet_bytes=1200, interval=0.002)
        sim.run(until=sim.now + 2.0)
        heavy_delay = sink.flow(heavy.flow_id).delay.mean
        assert heavy_delay > light_delay


class TestAdhocTraffic:
    def test_peer_flows_without_infrastructure(self, sim):
        net = scenarios.build_adhoc_network(sim, station_count=4,
                                            radius_m=10.0)
        a, b = net.stations[0], net.stations[2]
        sink = TrafficSink(sim)
        b.on_receive(sink)
        CbrSource(sim, lambda p: a.send(b.address, p),
                  packet_bytes=300, interval=0.01, stop_after=50)
        sim.run(until=3.0)
        assert sink.total_received == 50

    def test_adhoc_delay_below_infrastructure(self, sim):
        """Ad-hoc is one hop; infrastructure relays through the AP."""
        from repro.phy.standards import DOT11G
        adhoc = scenarios.build_adhoc_network(sim, station_count=2,
                                              radius_m=10.0,
                                              standard=DOT11G)
        a, b = adhoc.stations
        adhoc_sink = TrafficSink(sim)
        b.on_receive(adhoc_sink)
        src = CbrSource(sim, lambda p: a.send(b.address, p),
                        packet_bytes=300, interval=0.02, stop_after=40)
        sim.run(until=3.0)
        adhoc_delay = adhoc_sink.flow(src.flow_id).delay.mean

        sim2 = Simulator(seed=11)
        bss = scenarios.build_infrastructure_bss(sim2, station_count=2,
                                                 radius_m=10.0)
        sa, sb = bss.stations
        infra_sink = TrafficSink(sim2)
        sb.on_receive(infra_sink)
        src2 = CbrSource(sim2, lambda p: sa.send(sb.address, p),
                         packet_bytes=300, interval=0.02, stop_after=40)
        sim2.run(until=sim2.now + 3.0)
        infra_delay = infra_sink.flow(src2.flow_id).delay.mean
        assert adhoc_delay < infra_delay
