"""AES-128 block cipher, from scratch.

WPA2/CCMP mandates AES (source text §5.2); this is a clear, table-driven
implementation of the forward cipher (and the inverse, for
completeness) sufficient for CCM mode — CCM only ever uses the forward
direction, for both CTR encryption and CBC-MAC authentication.

This implementation favours readability over speed and is **not**
constant-time; it is a protocol-simulation artifact, not production
cryptography.
"""

from __future__ import annotations

from typing import List

from ..core.errors import SecurityError

BLOCK_SIZE = 16

# --- S-box generation (from GF(2^8) inversion + affine transform) -----------


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    if a == 0:
        return 0
    # a^(254) in GF(2^8) is the multiplicative inverse.
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, power)
        power = _gf_mul(power, power)
        exponent >>= 1
    return result


def _build_sbox() -> List[int]:
    sbox = []
    for value in range(256):
        inv = _gf_inverse(value)
        transformed = inv
        for shift in (1, 2, 3, 4):
            transformed ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox.append(transformed ^ 0x63)
    return sbox


SBOX = _build_sbox()
INV_SBOX = [0] * 256
for _index, _value in enumerate(SBOX):
    INV_SBOX[_value] = _index

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def expand_key(key: bytes) -> List[List[int]]:
    """AES-128 key expansion into 11 round keys (each 16 bytes)."""
    if len(key) != 16:
        raise SecurityError(f"AES-128 needs a 16-byte key, got {len(key)}")
    words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
    for index in range(4, 44):
        word = list(words[index - 1])
        if index % 4 == 0:
            word = word[1:] + word[:1]                      # RotWord
            word = [SBOX[byte] for byte in word]            # SubWord
            word[0] ^= _RCON[index // 4 - 1]
        words.append([a ^ b for a, b in zip(word, words[index - 4])])
    return [sum(words[4 * round_index:4 * round_index + 4], [])
            for round_index in range(11)]


def _add_round_key(state: List[int], round_key: List[int]) -> None:
    for index in range(16):
        state[index] ^= round_key[index]


def _sub_bytes(state: List[int]) -> None:
    for index in range(16):
        state[index] = SBOX[state[index]]


def _inv_sub_bytes(state: List[int]) -> None:
    for index in range(16):
        state[index] = INV_SBOX[state[index]]


# State layout: column-major, state[4*col + row].

def _shift_rows(state: List[int]) -> None:
    for row in range(1, 4):
        column_values = [state[4 * col + row] for col in range(4)]
        shifted = column_values[row:] + column_values[:row]
        for col in range(4):
            state[4 * col + row] = shifted[col]


def _inv_shift_rows(state: List[int]) -> None:
    for row in range(1, 4):
        column_values = [state[4 * col + row] for col in range(4)]
        shifted = column_values[-row:] + column_values[:-row]
        for col in range(4):
            state[4 * col + row] = shifted[col]


def _mix_columns(state: List[int]) -> None:
    for col in range(4):
        a = state[4 * col:4 * col + 4]
        state[4 * col + 0] = _gf_mul(a[0], 2) ^ _gf_mul(a[1], 3) ^ a[2] ^ a[3]
        state[4 * col + 1] = a[0] ^ _gf_mul(a[1], 2) ^ _gf_mul(a[2], 3) ^ a[3]
        state[4 * col + 2] = a[0] ^ a[1] ^ _gf_mul(a[2], 2) ^ _gf_mul(a[3], 3)
        state[4 * col + 3] = _gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ _gf_mul(a[3], 2)


def _inv_mix_columns(state: List[int]) -> None:
    for col in range(4):
        a = state[4 * col:4 * col + 4]
        state[4 * col + 0] = (_gf_mul(a[0], 14) ^ _gf_mul(a[1], 11)
                              ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9))
        state[4 * col + 1] = (_gf_mul(a[0], 9) ^ _gf_mul(a[1], 14)
                              ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13))
        state[4 * col + 2] = (_gf_mul(a[0], 13) ^ _gf_mul(a[1], 9)
                              ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11))
        state[4 * col + 3] = (_gf_mul(a[0], 11) ^ _gf_mul(a[1], 13)
                              ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14))


class Aes128:
    """AES-128 with a pre-expanded key schedule."""

    def __init__(self, key: bytes):
        self._round_keys = expand_key(key)

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise SecurityError(f"block must be 16 bytes, got {len(block)}")
        state = list(block)
        _add_round_key(state, self._round_keys[0])
        for round_index in range(1, 10):
            _sub_bytes(state)
            _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[round_index])
        _sub_bytes(state)
        _shift_rows(state)
        _add_round_key(state, self._round_keys[10])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise SecurityError(f"block must be 16 bytes, got {len(block)}")
        state = list(block)
        _add_round_key(state, self._round_keys[10])
        for round_index in range(9, 0, -1):
            _inv_shift_rows(state)
            _inv_sub_bytes(state)
            _add_round_key(state, self._round_keys[round_index])
            _inv_mix_columns(state)
        _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)
