"""The perf harness's per-macro wall-clock timeout guard."""

import pathlib
import sys
import time

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import run_bench  # noqa: E402
from perf import macro  # noqa: E402


def _fast_macro(scale=1.0, **kwargs):
    return {"work": 10, "work_unit": "events", "stats": {"x": 1}}


def _hanging_macro(scale=1.0, **kwargs):
    time.sleep(60)
    return _fast_macro(scale)


def _crashing_macro(scale=1.0, **kwargs):
    raise RuntimeError("synthetic macro failure")


@pytest.fixture
def stub_macros(monkeypatch):
    # Fork-based children inherit these monkeypatches: the guarded
    # runner sees the same MACROS dict this process does.
    monkeypatch.setitem(macro.MACROS, "stub_fast", _fast_macro)
    monkeypatch.setitem(macro.MACROS, "stub_hang", _hanging_macro)
    monkeypatch.setitem(macro.MACROS, "stub_crash", _crashing_macro)


class TestTimeoutGuard:
    def test_fast_macro_completes_within_timeout(self, stub_macros):
        status, record = run_bench.time_scenario_guarded(
            "stub_fast", 1.0, 1, timeout=30.0)
        assert status == "ok"
        assert record["name"] == "stub_fast"
        assert record["stats"] == {"x": 1}

    def test_hanging_macro_is_killed(self, stub_macros):
        start = time.monotonic()
        status, payload = run_bench.time_scenario_guarded(
            "stub_hang", 1.0, 1, timeout=0.5)
        assert status == "timeout"
        assert payload is None
        assert time.monotonic() - start < 30.0

    def test_crashing_macro_reports_error(self, stub_macros):
        status, message = run_bench.time_scenario_guarded(
            "stub_crash", 1.0, 1, timeout=30.0)
        assert status == "error"
        assert "synthetic macro failure" in message

    def test_zero_timeout_runs_in_process(self, stub_macros):
        status, record = run_bench.time_scenario_guarded(
            "stub_fast", 1.0, 1, timeout=0.0)
        assert status == "ok"
        assert record["stats"] == {"x": 1}


class TestRunFullFailureRows:
    def test_timeout_yields_failed_row_and_nonzero_exit(
            self, stub_macros, tmp_path, capsys):
        code = run_bench.run_full(["stub_fast", "stub_hang"], 1.0, 1,
                                  tmp_path, timeout=0.5)
        out = capsys.readouterr().out
        assert code == 1
        assert "stub_hang" in out and "FAILED" in out
        assert (tmp_path / "BENCH_stub_fast.json").exists()
        assert not (tmp_path / "BENCH_stub_hang.json").exists()

    def test_all_ok_exits_zero(self, stub_macros, tmp_path):
        code = run_bench.run_full(["stub_fast"], 1.0, 1, tmp_path,
                                  timeout=10.0)
        assert code == 0
        assert (tmp_path / "BENCH_stub_fast.json").exists()
