"""Tests for WEP shared-key authentication and its keystream flaw."""

import pytest

from repro.core.errors import AuthenticationError
from repro.security.shared_key_auth import (
    CHALLENGE_LEN,
    KeystreamThief,
    SharedKeyAuthenticator,
    SharedKeyClient,
    run_legitimate_exchange,
)
from repro.security.wep import WepCipher

KEY = b"\x0a\x0b\x0c\x0d\x0e"


def setup():
    authenticator = SharedKeyAuthenticator(WepCipher(KEY))
    client = SharedKeyClient(WepCipher(KEY))
    return authenticator, client


class TestHonestExchange:
    def test_correct_key_authenticates(self):
        authenticator, client = setup()
        ok, _captured = run_legitimate_exchange(authenticator, client)
        assert ok
        assert authenticator.successes == 1

    def test_wrong_key_fails(self):
        authenticator, _ = setup()
        impostor = SharedKeyClient(WepCipher(b"\x01\x02\x03\x04\x05"))
        ok, _ = run_legitimate_exchange(authenticator, impostor)
        assert not ok
        assert authenticator.failures == 1

    def test_challenges_are_fresh(self):
        authenticator, _ = setup()
        first = authenticator.issue_challenge(b"a")
        second = authenticator.issue_challenge(b"b")
        assert first != second
        assert len(first) == CHALLENGE_LEN

    def test_response_without_challenge_fails(self):
        authenticator, client = setup()
        response = client.answer(b"x" * CHALLENGE_LEN)
        assert not authenticator.verify_response(b"never-asked", response)

    def test_challenge_single_use(self):
        authenticator, client = setup()
        challenge = authenticator.issue_challenge(b"sta")
        response = client.answer(challenge)
        assert authenticator.verify_response(b"sta", response)
        # Replaying the same response: the challenge was consumed.
        assert not authenticator.verify_response(b"sta", response)


class TestKeystreamTheft:
    """The attack that killed shared-key authentication."""

    def test_thief_authenticates_after_one_observation(self):
        authenticator, client = setup()
        _ok, captured = run_legitimate_exchange(authenticator, client)

        thief = KeystreamThief()
        thief.observe(captured)
        assert thief.armed

        # A brand-new challenge; the thief never saw the key.
        challenge = authenticator.issue_challenge(b"thief")
        forged = thief.answer(challenge)
        assert authenticator.verify_response(b"thief", forged)

    def test_thief_reuses_the_same_iv(self):
        authenticator, client = setup()
        _ok, captured = run_legitimate_exchange(authenticator, client)
        thief = KeystreamThief()
        thief.observe(captured)
        challenge = authenticator.issue_challenge(b"thief")
        forged = thief.answer(challenge)
        assert forged[:4] == captured.wep_body[:4]  # replayed IV header

    def test_unarmed_thief_cannot_answer(self):
        thief = KeystreamThief()
        with pytest.raises(AuthenticationError):
            thief.answer(b"x" * CHALLENGE_LEN)

    def test_stolen_keystream_is_the_real_keystream(self):
        authenticator, client = setup()
        _ok, captured = run_legitimate_exchange(authenticator, client)
        thief = KeystreamThief()
        thief.observe(captured)
        from repro.security.rc4 import keystream
        iv = captured.wep_body[:3]
        real = keystream(iv + KEY, CHALLENGE_LEN + 4)
        assert thief._keystream == real

    def test_thief_limited_to_stolen_length(self):
        authenticator, client = setup()
        _ok, captured = run_legitimate_exchange(authenticator, client)
        thief = KeystreamThief()
        thief.observe(captured)
        with pytest.raises(AuthenticationError):
            thief.answer(b"y" * (CHALLENGE_LEN + 64))
