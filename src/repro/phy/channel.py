"""The shared wireless medium.

:class:`Medium` connects radios through a propagation model.  When a
radio transmits, the medium computes the receive power at every other
attached radio on the same channel and delivers the energy after the
speed-of-light propagation delay.  Radios below the reception floor
still receive the energy for CCA/interference purposes — a frame you
cannot decode can still deafen you.

The medium is deliberately policy-free: locking, capture, SINR, and
error decisions all live in :class:`~repro.phy.transceiver.Radio`.

Fast path: for static topologies the link budget between any two radios
never changes, so :class:`LinkCache` memoizes the per-pair received
power and propagation delay.  ``Medium.transmit`` then does one dict
lookup per receiver instead of a dB-space round-trip (``log10``/``pow``)
per frame.  Cache entries carry the :class:`~repro.core.topology.Position`
objects they were computed from; because positions are immutable, a
moved radio invalidates its links automatically (the identity check
fails) *and* explicitly (the radio's position setter and the mobility
models call :meth:`Medium.invalidate_links`).
"""

from __future__ import annotations

import itertools
from heapq import heappush as _heappush
from typing import Any, Dict, List, Optional, Tuple

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.units import SPEED_OF_LIGHT, dbm_to_watts, watts_to_dbm
from .propagation import PropagationModel
from .standards import PhyMode
from .transceiver import Radio


class Transmission:
    """One frame in flight on the medium."""

    _ids = itertools.count(1)

    __slots__ = ("id", "sender", "payload", "size_bits", "mode",
                 "power_watts", "start_time", "duration")

    def __init__(self, sender: Radio, payload: Any, size_bits: int,
                 mode: PhyMode, power_watts: float, start_time: float,
                 duration: float):
        self.id = next(Transmission._ids)
        self.sender = sender
        self.payload = payload
        self.size_bits = size_bits
        self.mode = mode
        self.power_watts = power_watts
        self.start_time = start_time
        self.duration = duration

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Transmission #{self.id} from {self.sender.name} "
                f"{self.size_bits}b @{self.mode.name}>")


class LinkCache:
    """Memoized per-pair link budgets for static (between moves) topologies.

    One entry per ordered ``(sender, receiver)`` radio pair:
    ``(rx_power_watts, delay_s, tx_power_watts, tx_position,
    rx_position)``.  The positions (and transmit power) the entry was
    computed from ride along so a lookup can validate the entry with two
    identity checks and a float compare — positions are immutable value
    objects, so any movement replaces the object and the stale entry
    misses.  Explicit invalidation exists for model-level changes (e.g.
    re-seeding a shadowing decorator) and is wired into the radio
    position setter and the mobility models.

    The cached receive power is the output of
    :meth:`~repro.phy.propagation.PropagationModel.received_power_watts`,
    so cached and uncached runs (and pre-cache historical runs) produce
    bit-identical link budgets; only the per-frame cost changes.
    """

    __slots__ = ("_entries", "hits", "misses")

    def __init__(self) -> None:
        self._entries: Dict[Tuple[Radio, Radio],
                            Tuple[float, float, float, Any, Any]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, propagation: PropagationModel, sender: Radio,
               receiver: Radio, tx_power_watts: float
               ) -> Tuple[float, float, float, Any, Any]:
        """Return ``(rx_power, delay_s, tx_power, tx_pos, rx_pos)``."""
        key = (sender, receiver)
        tx_pos = sender.position
        rx_pos = receiver.position
        entry = self._entries.get(key)
        if entry is not None and entry[3] is tx_pos and \
                entry[4] is rx_pos and entry[2] == tx_power_watts:
            self.hits += 1
            return entry
        rx_power = propagation.received_power_watts(tx_power_watts,
                                                    tx_pos, rx_pos)
        delay = tx_pos.distance_to(rx_pos) / SPEED_OF_LIGHT
        entry = (rx_power, delay, tx_power_watts, tx_pos, rx_pos)
        self._entries[key] = entry
        self.misses += 1
        return entry

    def invalidate(self, radio: Optional[Radio] = None) -> None:
        """Drop every entry involving ``radio`` (or all entries)."""
        if radio is None:
            self._entries.clear()
            return
        self._entries = {
            key: entry for key, entry in self._entries.items()
            if key[0] is not radio and key[1] is not radio}

    def __len__(self) -> int:
        return len(self._entries)


class Medium:
    """A broadcast radio medium with per-channel isolation.

    Parameters
    ----------
    sim:
        The simulation kernel.
    propagation:
        Path-loss model applied between every transmitter/receiver pair.
    reception_floor_dbm:
        Arrivals weaker than this are dropped entirely (not even counted
        as interference).  Keeps the event count linear in *audible*
        neighbours rather than all nodes.  Default -110 dBm is well below
        any CCA threshold.
    propagation_delay:
        Whether to model the speed-of-light delay (on by default; a few
        hundred nanoseconds at WLAN scale, microseconds at WiMAX scale).
    cache_links:
        Memoize per-pair link budgets (on by default).  Disable to force
        a fresh propagation-model evaluation per frame — results are
        bit-identical either way (both paths go through
        ``received_power_watts``); the knob exists for the determinism
        tests and for exotic models whose loss varies with something
        other than geometry.
    """

    def __init__(self, sim: Simulator, propagation: PropagationModel,
                 reception_floor_dbm: float = -110.0,
                 propagation_delay: bool = True,
                 cache_links: bool = True):
        self.sim = sim
        self.propagation = propagation
        self.reception_floor_watts = dbm_to_watts(reception_floor_dbm)
        self.propagation_delay = propagation_delay
        self.cache_links = cache_links
        self.links = LinkCache()
        self._radios: List[Radio] = []
        self._active: Dict[int, List[Transmission]] = {}
        # Per-channel fan-out lists: ``(radio, arrival_begins,
        # arrival_ends)`` with the bound methods pre-resolved (attach
        # order preserved, so the arrival fan-out visits receivers in
        # the same deterministic order as a scan of the full radio
        # list).  Invalidated wholesale on attach and on any retune.
        self._by_channel: Dict[int, List[Tuple[Radio, Any, Any]]] = {}

    def attach(self, radio: Radio) -> None:
        """Register a radio (called from the Radio constructor)."""
        if radio in self._radios:
            raise ConfigurationError(f"radio {radio.name} attached twice")
        self._radios.append(radio)
        self._by_channel.clear()

    def invalidate_channels(self) -> None:
        """Drop the per-channel radio lists (a radio retuned)."""
        self._by_channel.clear()

    def _channel_members(self, channel_id: int) -> List[Tuple[Radio, Any, Any]]:
        members = self._by_channel.get(channel_id)
        if members is None:
            members = [(radio, radio.arrival_begins, radio.arrival_ends)
                       for radio in self._radios
                       if radio._channel_id == channel_id]
            self._by_channel[channel_id] = members
        return members

    def invalidate_links(self, radio: Optional[Radio] = None) -> None:
        """Invalidate cached link budgets (all, or one radio's links).

        Called from :class:`~repro.phy.transceiver.Radio`'s position
        setter and from the mobility models on every move; call it
        directly after mutating the propagation model itself.
        """
        self.links.invalidate(radio)

    def radios_on_channel(self, channel_id: int) -> List[Radio]:
        return [radio for radio, _begins, _ends
                in self._channel_members(channel_id)]

    def active_transmissions(self, channel_id: int) -> List[Transmission]:
        """Transmissions currently on the air on a channel."""
        now = self.sim.now
        active = self._active.get(channel_id, [])
        alive = [tx for tx in active if tx.end_time > now]
        self._active[channel_id] = alive
        return list(alive)

    # --- transmission fan-out ------------------------------------------------

    def transmit(self, sender: Radio, payload: Any, size_bits: int,
                 mode: PhyMode, duration: float, power_watts: float
                 ) -> Transmission:
        """Fan a frame out to every audible co-channel radio."""
        sim = self.sim
        now = sim._now
        channel = sender._channel_id
        transmission = Transmission(sender, payload, size_bits, mode,
                                    power_watts, now, duration)
        self._active.setdefault(channel, []).append(transmission)
        self.active_transmissions(channel)  # opportunistic GC
        # Hot loop: bind everything once; one cache lookup per receiver
        # and two raw heap pushes (schedule_fast_at inlined — the
        # delays are nonnegative by construction, so the bounds checks
        # are redundant here; entry shape and seq consumption are
        # identical to the schedule_fast_at path).
        floor = self.reception_floor_watts
        propagation = self.propagation
        model_delay = self.propagation_delay
        lookup = self.links.lookup if self.cache_links else None
        heap = sim._heap
        next_seq = sim._next_seq
        scheduled = 0
        for receiver, begins, ends in self._channel_members(channel):
            if receiver is sender:
                continue
            if lookup is not None:
                entry = lookup(propagation, sender, receiver, power_watts)
                rx_power = entry[0]
                if rx_power < floor:
                    continue
                delay = entry[1] if model_delay else 0.0
            else:
                tx_pos = sender.position
                rx_pos = receiver.position
                rx_power = propagation.received_power_watts(
                    power_watts, tx_pos, rx_pos)
                if rx_power < floor:
                    continue
                delay = tx_pos.distance_to(rx_pos) / SPEED_OF_LIGHT \
                    if model_delay else 0.0
            _heappush(heap, (now + delay, next_seq(), None, begins,
                             (transmission, rx_power)))
            # Parenthesized to match the historical relative-delay float
            # arithmetic exactly: now + (delay + duration), NOT
            # (now + delay) + duration — the ulp difference is enough to
            # reorder CCA edges and desynchronize seeded runs.
            _heappush(heap, (now + (delay + duration), next_seq(), None,
                             ends, (transmission,)))
            scheduled += 2
        sim._scheduled += scheduled
        return transmission

    # --- link budget introspection (used by scanning / benchmarks) ----------

    def link_rx_power_dbm(self, sender: Radio, receiver: Radio) -> float:
        """Receive power the receiver would see from the sender, in dBm."""
        rx_watts = self.propagation.received_power_watts(
            sender.tx_power_watts, sender.position, receiver.position)
        return watts_to_dbm(rx_watts)

    def link_snr_db(self, sender: Radio, receiver: Radio) -> float:
        """Noise-limited SNR of the sender->receiver link."""
        return receiver.snr_from_dbm(self.link_rx_power_dbm(sender, receiver))
