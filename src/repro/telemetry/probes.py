"""Instrumentation probes for every subsystem, plus the Telemetry hub.

Each probe wires one subsystem into a
:class:`~repro.telemetry.metrics.MetricsRegistry` /
:class:`~repro.telemetry.metrics.PeriodicSampler` pair.  The common
contract: a probe installed against a *disabled* registry is a complete
no-op (nothing wrapped, nothing sampled, nothing allocated), and an
installed probe never mutates simulation state — it reads counters and
gauges the subsystems already maintain, wraps a method with a
pass-through that only counts, or rides the one-slot ``_frame_probe``
hook.  Probes therefore cannot perturb seeded protocol outcomes; the
only observable difference in an instrumented run is the sampler's own
(read-only) events on the kernel heap.

:class:`Telemetry` bundles the whole layer behind one object — the
perf macros, ``run_bench --telemetry`` and the parallel executor all
construct exactly this.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.engine import Simulator, Timer
from ..core.errors import SimulationError
from .metrics import MetricsRegistry, PeriodicSampler
from .spans import FrameSpanTracker, Span, SpanLog

__all__ = ["KernelDispatchProbe", "MediumProbe", "MacFleetProbe",
           "RadioFleetProbe", "record_fault_spans", "Telemetry"]


class KernelDispatchProbe:
    """Dispatch-by-shape counting for the kernel run loop.

    The production loop is untouched: :meth:`install` shadows
    ``sim.run`` with an instrumented twin *as an instance attribute*
    (the class method stays pristine for uninstrumented simulators).
    The twin executes the identical event sequence — same heap, same
    lazy-drop rules, same clock/counter semantics — and additionally
    counts dispatches per entry shape (handle / timer / fast) and lazy
    drops (cancelled handles, superseded timer versions).  It folds the
    fast until-only branch and the budget branch into one generic loop,
    so instrumented runs trade a little dispatch speed for visibility;
    that is the telemetry bargain, and exactly why install is opt-in.
    """

    def __init__(self, sim: Simulator, registry: MetricsRegistry):
        self.sim = sim
        self._enabled = registry.enabled
        self._installed = False
        self.dispatch_handle = registry.counter("kernel", "dispatch",
                                                shape="handle")
        self.dispatch_timer = registry.counter("kernel", "dispatch",
                                               shape="timer")
        self.dispatch_fast = registry.counter("kernel", "dispatch",
                                              shape="fast")
        self.drops_handle = registry.counter("kernel", "lazy_drops",
                                             shape="handle")
        self.drops_timer = registry.counter("kernel", "lazy_drops",
                                            shape="timer")

    def install(self) -> "KernelDispatchProbe":
        if self._enabled and not self._installed:
            self.sim.run = self._run  # shadow the class method
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            del self.sim.run  # the class method resurfaces
            self._installed = False

    def _run(self, until: Optional[float] = None,
             max_events: Optional[int] = None) -> float:
        # Semantics mirror Simulator.run's generic branch exactly
        # (KEEP IN SYNC with engine.Simulator.run): identical event
        # sequence, clock behaviour and counter updates — plus the
        # per-shape counting.
        sim = self.sim
        if sim._running:
            raise SimulationError("run() called re-entrantly")
        sim._running = True
        sim._stopped = False
        heap = sim._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        timer_class = Timer
        d_handle = self.dispatch_handle
        d_timer = self.dispatch_timer
        d_fast = self.dispatch_fast
        drop_handle = self.drops_handle
        drop_timer = self.drops_timer
        budget = max_events if max_events is not None else math.inf
        try:
            while heap and not sim._stopped and budget > 0:
                entry = heappop(heap)
                time = entry[0]
                if until is not None and time > until:
                    heappush(heap, entry)
                    break
                event = entry[2]
                if event is None:
                    callback = entry[3]
                    args = entry[4]
                    d_fast.value += 1
                elif event.__class__ is timer_class:
                    if event._version != entry[3] or not event._armed:
                        drop_timer.value += 1
                        continue  # superseded/cancelled: lazy drop
                    event._armed = False
                    callback = event._callback
                    args = ()
                    d_timer.value += 1
                else:
                    if event._cancelled:
                        drop_handle.value += 1
                        continue
                    event._fired = True
                    callback = event.callback
                    args = event.args
                    d_handle.value += 1
                sim._now = time
                sim._events_executed += 1
                budget -= 1
                callback(*args)
            if until is not None and not sim._stopped and sim._now < until:
                sim._now = until
        finally:
            sim._running = False
        return sim._now


def _install_kernel_sampling(sim: Simulator,
                             sampler: PeriodicSampler) -> None:
    """Heap/pending/cancellation gauges (cancellations are dominated by
    timer re-arms: every Timer re-anchor supersedes its live entry)."""
    sampler.add("kernel", "heap_depth", lambda: float(len(sim._heap)))
    sampler.add("kernel", "pending_events",
                lambda: float(sim._scheduled - sim._events_executed
                              - sim._cancelled_events))
    sampler.add("kernel", "events_executed",
                lambda: float(sim._events_executed))
    sampler.add("kernel", "cancelled_events",
                lambda: float(sim._cancelled_events))


class MediumProbe:
    """Per-channel airtime/frame accounting and fan-out widths.

    :meth:`install` wraps ``medium.transmit`` with a counting
    pass-through, again as an instance attribute — and because
    ``Radio.transmit`` dispatches through ``self.medium.transmit`` and
    ``Medium.transmit_energy`` through ``self.transmit``, the one wrap
    observes every frame *and* every energy burst.  Fan-out width is
    recovered exactly from the kernel's scheduled-events counter (the
    fan-out pushes two heap entries per audible receiver and nothing
    else inside ``transmit`` schedules), so the probe needs no access
    to the compiled plans.  Plan/link-cache hit rates ride the sampler.
    """

    def __init__(self, medium: Any, registry: MetricsRegistry,
                 sampler: Optional[PeriodicSampler] = None):
        self.medium = medium
        self.registry = registry
        self._enabled = registry.enabled
        self._installed = False
        self._original: Optional[Callable] = None
        self.fanout = registry.histogram("medium", "fanout_width")
        self.energy_bursts = registry.counter("medium", "energy_bursts")
        if sampler is not None:
            sampler.add("medium", "plan_hits",
                        lambda: float(medium.plan_hits))
            sampler.add("medium", "plan_misses",
                        lambda: float(medium.plan_misses))
            sampler.add("medium", "plan_invalidations",
                        lambda: float(medium.plan_invalidations))
            sampler.add("medium", "link_cache_hits",
                        lambda: float(medium.links.hits))
            sampler.add("medium", "link_cache_misses",
                        lambda: float(medium.links.misses))

    def install(self) -> "MediumProbe":
        if not self._enabled or self._installed:
            return self
        medium = self.medium
        original = medium.transmit  # the bound class method
        sim = medium.sim
        fanout = self.fanout
        energy_bursts = self.energy_bursts
        counter = self.registry.counter
        # Per-channel handles, resolved lazily and memoized locally so
        # the steady state is two dict hits per frame.
        frames: Dict[int, Any] = {}
        airtime: Dict[int, Any] = {}

        def _transmit(sender: Any, payload: Any, size_bits: int, mode: Any,
                      duration: float, power_watts: float) -> Any:
            before = sim._scheduled
            transmission = original(sender, payload, size_bits, mode,
                                    duration, power_watts)
            channel = sender._channel_id
            frame_counter = frames.get(channel)
            if frame_counter is None:
                frame_counter = frames[channel] = counter(
                    "medium", "frames", channel=channel)
                airtime[channel] = counter(
                    "medium", "airtime_seconds", channel=channel)
            frame_counter.value += 1
            airtime[channel].value += duration
            if size_bits == 0:
                energy_bursts.value += 1
            fanout.observe((sim._scheduled - before) // 2)
            return transmission

        self._original = original
        medium.transmit = _transmit
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            del self.medium.transmit
            self._original = None
            self._installed = False


class MacFleetProbe:
    """Aggregate DCF-fleet gauges, sampled — zero per-event cost.

    Everything here reads state the MACs already maintain: queue
    depths, NAV deadlines, contention-timer arming, and the per-MAC
    retry/drop counters.  ``backoff_stalled`` counts stations that hold
    a residual backoff but have neither IFS nor countdown armed — i.e.
    contenders frozen by a busy medium right now.
    """

    def __init__(self, macs: Iterable[Any], registry: MetricsRegistry,
                 sampler: PeriodicSampler):
        self.macs = list(macs)
        if not registry.enabled or not self.macs:
            return
        sampler.add("mac", "queue_depth_total", self._queue_total)
        sampler.add("mac", "queue_depth_max", self._queue_max)
        sampler.add("mac", "nav_busy_count", self._nav_busy)
        sampler.add("mac", "backoff_stalled", self._backoff_stalled)
        sampler.add("mac", "retry_timeouts", self._retry_timeouts)
        sampler.add("mac", "queue_drops", self._queue_drops)

    def _queue_total(self) -> float:
        return float(sum(len(mac.queue) for mac in self.macs))

    def _queue_max(self) -> float:
        return float(max(len(mac.queue) for mac in self.macs))

    def _nav_busy(self) -> float:
        count = 0
        for mac in self.macs:
            if mac.sim._now < mac.nav._until:
                count += 1
        return float(count)

    def _backoff_stalled(self) -> float:
        count = 0
        for mac in self.macs:
            if mac._backoff_remaining is not None \
                    and not mac._ifs._armed and not mac._countdown._armed:
                count += 1
        return float(count)

    def _retry_timeouts(self) -> float:
        total = 0
        for mac in self.macs:
            counters = mac.counters
            total += counters.get("ack_timeouts") \
                + counters.get("cts_timeouts")
        return float(total)

    def _queue_drops(self) -> float:
        return float(sum(mac.counters.get("queue_drops")
                         for mac in self.macs))


class RadioFleetProbe:
    """Aggregate PHY-fleet gauges: incident arrivals and the fast-mode
    accumulator rebase count (cumulative ``Radio._rebases``)."""

    def __init__(self, radios: Iterable[Any], registry: MetricsRegistry,
                 sampler: PeriodicSampler):
        self.radios = list(radios)
        if not registry.enabled or not self.radios:
            return
        sampler.add("phy", "arrivals_incident", self._arrivals)
        sampler.add("phy", "accumulator_rebases", self._rebases)

    def _arrivals(self) -> float:
        return float(sum(len(radio._arrivals) for radio in self.radios))

    def _rebases(self) -> float:
        return float(sum(radio._rebases for radio in self.radios))


def record_fault_spans(fault_log: Any, spans: SpanLog,
                       horizon: Optional[float] = None) -> int:
    """Convert a FaultLog's crash/restart pairs into ``downtime`` spans.

    Delegates the pairing to
    :meth:`~repro.faults.schedule.FaultLog.downtime_spans`; targets
    still down at the horizon yield open spans (outcome ``open``).
    Returns the number of spans recorded.
    """
    if not spans.wants("downtime"):
        return 0
    recorded = 0
    for target, start, end in fault_log.downtime_spans():
        if end is None:
            span = Span("downtime", target, start, end=horizon,
                        outcome="open")
        else:
            span = Span("downtime", target, start, end=end,
                        outcome="restored")
        spans.record(span)
        recorded += 1
    return recorded


class Telemetry:
    """The whole observability layer behind one object.

    Construct with ``enabled=False`` for a null hub: every
    ``instrument_*`` call and :meth:`install` short-circuits, metric
    handles are the shared null metric, and the simulation runs the
    byte-identical uninstrumented path.  Enabled, the hub owns one
    registry, one sim-time sampler, one span log and one frame tracker;
    :meth:`finish` takes the final edge sample, closes still-open frame
    spans and (optionally) folds a fault log into downtime spans.

    ``dispatch=True`` additionally swaps in the instrumented kernel run
    loop — the one probe with measurable enabled-path cost, so it is a
    separate opt-in.
    """

    def __init__(self, sim: Simulator, enabled: bool = True,
                 sample_interval: float = 0.05,
                 span_capacity: Optional[int] = 65_536,
                 series_capacity: Optional[int] = 100_000):
        self.sim = sim
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.registry.set_series_capacity(series_capacity)
        self.sampler = PeriodicSampler(sim, self.registry,
                                       interval=sample_interval)
        self.spans = SpanLog(capacity=span_capacity, enabled=enabled)
        self.frames = FrameSpanTracker(self.spans)
        self._dispatch_probe: Optional[KernelDispatchProbe] = None
        self._medium_probes: List[MediumProbe] = []
        self._fault_logs: List[Any] = []
        self._finished = False

    # --- wiring ------------------------------------------------------------

    def instrument_kernel(self, dispatch: bool = False) -> "Telemetry":
        if not self.enabled:
            return self
        _install_kernel_sampling(self.sim, self.sampler)
        if dispatch:
            self._dispatch_probe = KernelDispatchProbe(
                self.sim, self.registry).install()
        return self

    def instrument_medium(self, medium: Any) -> "Telemetry":
        if not self.enabled:
            return self
        self._medium_probes.append(
            MediumProbe(medium, self.registry, self.sampler).install())
        return self

    def instrument_macs(self, macs: Iterable[Any],
                        spans: bool = True) -> "Telemetry":
        if not self.enabled:
            return self
        macs = list(macs)
        MacFleetProbe(macs, self.registry, self.sampler)
        if spans:
            for mac in macs:
                self.frames.attach(mac)
        return self

    def instrument_radios(self, radios: Iterable[Any]) -> "Telemetry":
        if not self.enabled:
            return self
        RadioFleetProbe(radios, self.registry, self.sampler)
        return self

    def instrument_faults(self, fault_log: Any) -> "Telemetry":
        """Remember a fault log; :meth:`finish` folds it into spans."""
        if self.enabled:
            self._fault_logs.append(fault_log)
        return self

    def install(self) -> "Telemetry":
        """Arm the periodic sampler (call after all ``instrument_*``)."""
        self.sampler.install()
        return self

    # --- wind-down ---------------------------------------------------------

    def finish(self) -> "Telemetry":
        """Final edge sample + span closure (idempotent)."""
        if not self.enabled or self._finished:
            return self
        self._finished = True
        self.sampler.stop()
        self.sampler.sample_now()
        now = self.sim._now
        self.frames.finish(now)
        self.frames.detach_all()
        for fault_log in self._fault_logs:
            record_fault_spans(fault_log, self.spans, horizon=now)
        for probe in self._medium_probes:
            probe.uninstall()
        if self._dispatch_probe is not None:
            self._dispatch_probe.uninstall()
        return self

    # --- export conveniences ------------------------------------------------

    def sim_jsonl(self) -> str:
        """Canonical sim-time stream (byte-identical run-to-run)."""
        from .export import to_jsonl
        return to_jsonl(self.registry, spans=self.spans, stream="sim")

    def wall_jsonl(self) -> str:
        """The wall-clock stream — machine noise, never gated."""
        from .export import to_jsonl
        return to_jsonl(self.registry, spans=None, stream="wall")

    def summary(self) -> Dict[str, Any]:
        from .export import summary_table
        return summary_table(self.registry, spans=self.spans)
