"""Declarative campaign runner: simulation-as-a-service.

The production story is not one big run but *many* — parameter sweeps,
seed ensembles, regression matrices.  This package turns experiments
into data:

* :mod:`~repro.campaign.spec` — the TOML/dict scenario schema and its
  validating loader (errors name the exact spec path),
* :mod:`~repro.campaign.grid` — cartesian sweep + seed-ensemble
  expansion with content-addressed (sha1) job identities,
* :mod:`~repro.campaign.manifest` — the crash-safe resumable ledger
  (atomic-rename updates; a killed campaign resumes where it stopped),
* :mod:`~repro.campaign.runner` — executes one concrete job against
  the existing scenario builders,
* :mod:`~repro.campaign.store` — the byte-deterministic columnar
  JSONL/CSV result store,
* :mod:`~repro.campaign.executor` — fan-out, persistence and resume,
* :mod:`~repro.campaign.pool` — the fork/timeout process pool shared
  with ``tools/run_bench.py``.

``tools/run_campaign.py`` is the command-line face;
:mod:`repro.analysis.campaign` aggregates the result store into
mean/CI ensemble tables and sweep curves.
"""

from .executor import CampaignResult, run_campaign
from .grid import Job, expand_grid, grid_sha1
from .manifest import Manifest
from .runner import BUILDERS, run_job
from .spec import (SCHEMA_DOC, SpecError, canonical_json, load_spec,
                   spec_sha1, validate_spec)
from .store import StoreWriter, csv_text, read_store, row_line

__all__ = [
    "BUILDERS",
    "CampaignResult",
    "Job",
    "Manifest",
    "SCHEMA_DOC",
    "SpecError",
    "StoreWriter",
    "canonical_json",
    "csv_text",
    "expand_grid",
    "grid_sha1",
    "load_spec",
    "read_store",
    "row_line",
    "run_campaign",
    "run_job",
    "spec_sha1",
    "validate_spec",
]
