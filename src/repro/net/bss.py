"""Service-set descriptors: BSS, IBSS, ESS.

These are thin coordination objects over the APs/stations that *are*
the network (source text §3.1):

* a :class:`BasicServiceSet` is one AP plus its associated stations,
* an :class:`IndependentBss` is an ad-hoc set of peer stations sharing
  a generated BSSID and no AP,
* an :class:`ExtendedServiceSet` is one SSID spanning several APs glued
  together by a :class:`~repro.net.ds.DistributionSystem`, appearing as
  a single network to the stations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..mac.addresses import MacAddress
from .ap import AccessPoint
from .ds import DistributionSystem
from .station import Station


@dataclass
class BasicServiceSet:
    """One infrastructure BSS: an AP and its stations."""

    ap: AccessPoint
    stations: List[Station] = field(default_factory=list)

    @property
    def bssid(self) -> MacAddress:
        return self.ap.bssid

    @property
    def ssid(self) -> str:
        return self.ap.ssid

    def add_station(self, station: Station) -> None:
        if station.adhoc:
            raise ConfigurationError("ad-hoc station cannot join a BSS")
        self.stations.append(station)

    def associated_stations(self) -> List[Station]:
        return [station for station in self.stations
                if station.serving_ap == self.bssid]


def generate_ibss_bssid(rng: random.Random) -> MacAddress:
    """The random, locally administered BSSID an IBSS starter picks
    (source text §4.2, BSSID address description)."""
    value = rng.getrandbits(46)
    # Set locally-administered, clear group bit (first octet bits).
    first_octet = ((value >> 40) & 0xFF & ~0x01) | 0x02
    return MacAddress((first_octet << 40) | (value & ((1 << 40) - 1)))


@dataclass
class IndependentBss:
    """An ad-hoc network: peer stations, no AP, no DS."""

    bssid: MacAddress
    stations: List[Station] = field(default_factory=list)

    @classmethod
    def start(cls, sim: Simulator) -> "IndependentBss":
        rng = sim.rng.stream("ibss")
        return cls(bssid=generate_ibss_bssid(rng))

    def join(self, station: Station) -> None:
        if not station.adhoc:
            raise ConfigurationError("only ad-hoc stations can join an IBSS")
        station.mac.bssid = self.bssid
        self.stations.append(station)


class ExtendedServiceSet:
    """One SSID across several APs, bridged by a distribution system."""

    def __init__(self, sim: Simulator, ssid: str,
                 ds: Optional[DistributionSystem] = None):
        self.sim = sim
        self.ssid = ssid
        self.ds = ds if ds is not None else DistributionSystem(sim)
        self.bss_list: List[BasicServiceSet] = []

    def add_ap(self, ap: AccessPoint) -> BasicServiceSet:
        if ap.ssid != self.ssid:
            raise ConfigurationError(
                f"AP advertises {ap.ssid!r}, ESS is {self.ssid!r}")
        if ap.ds is None:
            ap.ds = self.ds
            self.ds.attach_ap(ap)
        elif ap.ds is not self.ds:
            raise ConfigurationError("AP already belongs to another DS")
        bss = BasicServiceSet(ap=ap)
        self.bss_list.append(bss)
        return bss

    @property
    def aps(self) -> List[AccessPoint]:
        return [bss.ap for bss in self.bss_list]

    def locate(self, station: MacAddress) -> Optional[AccessPoint]:
        """Which AP is currently serving a station?"""
        return self.ds.locate(station)
