"""Link-degradation and queue-pressure injectors."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ConfigurationError
from repro.faults import DegradedPropagation, LinkFader, inject_queue_pressure
from repro.mac.addresses import allocate_address
from repro.mac.dcf import DcfMac, MacListener
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss, FreeSpace
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio

A = Position(0, 0, 0)
B = Position(10, 0, 0)


class _Count(MacListener):
    def __init__(self):
        self.frames = 0

    def mac_receive(self, source, destination, payload, meta):
        self.frames += 1


def _pair(sim, medium):
    """Two MACs in range of each other."""
    rx_radio = Radio("rx", medium, DOT11B, A)
    rx = DcfMac(sim, rx_radio, allocate_address())
    counter = _Count()
    rx.listener = counter
    tx_radio = Radio("tx", medium, DOT11B, B)
    tx = DcfMac(sim, tx_radio, allocate_address())
    return tx, rx, counter


class TestDegradedPropagation:
    def test_transparent_with_no_fades(self):
        base = FreeSpace(2.4e9)
        wrapped = DegradedPropagation(base)
        assert wrapped.received_power_watts(0.1, A, B) == \
            base.received_power_watts(0.1, A, B)
        assert wrapped.link_gain(A, B) == base.link_gain(A, B)
        assert wrapped.path_loss_db(A, B) == base.path_loss_db(A, B)

    def test_fade_attenuates_both_directions(self):
        base = FreeSpace(2.4e9)
        wrapped = DegradedPropagation(base)
        wrapped._fades[A] = 20.0
        reference = base.received_power_watts(0.1, A, B)
        assert wrapped.received_power_watts(0.1, A, B) == \
            pytest.approx(reference * 0.01)
        assert wrapped.received_power_watts(0.1, B, A) == \
            pytest.approx(reference * 0.01)

    def test_fades_on_both_ends_add(self):
        base = FreeSpace(2.4e9)
        wrapped = DegradedPropagation(base)
        wrapped._fades[A] = 10.0
        wrapped._fades[B] = 10.0
        reference = base.received_power_watts(0.1, A, B)
        assert wrapped.received_power_watts(0.1, A, B) == \
            pytest.approx(reference * 0.01)

    def test_global_fade_hits_unfaded_links(self):
        base = FreeSpace(2.4e9)
        wrapped = DegradedPropagation(base)
        wrapped._global_db = 30.0
        reference = base.received_power_watts(0.1, A, B)
        assert wrapped.received_power_watts(0.1, A, B) == \
            pytest.approx(reference * 1e-3)


class TestLinkFader:
    def test_wrap_is_idempotent(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        fader_one = LinkFader(medium)
        fader_two = LinkFader(medium)
        assert fader_one.model is fader_two.model
        assert isinstance(medium.propagation, DegradedPropagation)
        assert fader_one.model.base is not medium.propagation

    def test_clear_restores_bit_exact_budget(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        before = medium.propagation.received_power_watts(0.1, A, B)
        fader = LinkFader(medium)
        fader.fade(A, 17.0)
        fader.clear(A)
        assert medium.propagation.received_power_watts(0.1, A, B) == before

    def test_fade_kills_delivery_and_clear_restores(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        tx, rx, counter = _pair(sim, medium)
        fader = LinkFader(medium)
        payload = bytes(200)
        tx.send(rx.address, payload)
        sim.run(until=0.05)
        assert counter.frames == 1
        # 120 dB on top of the 50 dB path: far below the reception floor.
        fader.fade(B, 120.0)
        tx.send(rx.address, payload)
        sim.run(until=0.3)
        assert counter.frames == 1
        fader.clear(B)
        tx.send(rx.address, payload)
        sim.run(until=0.6)
        assert counter.frames == 2

    def test_active_fades_bookkeeping(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        fader = LinkFader(medium)
        assert fader.active_fades == 0
        fader.fade(A, 10.0)
        fader.fade_all(3.0)
        assert fader.active_fades == 2
        fader.clear_all()
        assert fader.active_fades == 0


class TestQueuePressure:
    def test_fills_to_capacity(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        tx, rx, _ = _pair(sim, medium)
        added = inject_queue_pressure(tx, destination=rx.address)
        # The MAC immediately dequeues one MSDU to contend with, so the
        # queue itself holds capacity already-pending frames only after
        # the head-of-line grab.
        assert added >= tx.queue.capacity
        assert tx.queue.full

    def test_partial_fill(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        tx, rx, _ = _pair(sim, medium)
        inject_queue_pressure(tx, fill=0.5, destination=rx.address)
        assert len(tx.queue) >= int(tx.queue.capacity * 0.5)
        assert not tx.queue.full

    def test_flood_is_real_traffic(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        tx, rx, counter = _pair(sim, medium)
        added = inject_queue_pressure(tx, fill=0.2, destination=rx.address)
        sim.run(until=2.0)
        # The junk frames contend and deliver: the victim really worked.
        assert counter.frames >= added
