"""Fault injectors: link degradation and queue pressure.

Crash/restart injection lives on the components themselves
(``Station.crash``, ``AccessPoint.crash``, ``MeshNode.crash``,
``Radio.power_off`` ...) because tearing a component down correctly
needs its internals; this module holds the injectors that act *between*
components:

* :class:`DegradedPropagation` / :class:`LinkFader` — seeded attenuation
  fades layered over any propagation model, wired into the medium's
  LinkCache/plan invalidation so a fade takes effect on the very next
  frame,
* :func:`inject_queue_pressure` — flood a MAC's interface queue with
  junk MSDUs (a runaway upper layer), exercising the drop-tail and
  priority-enqueue machinery under pressure.

Everything here is deterministic: the injectors draw no randomness of
their own — timing and magnitude come from the caller (typically a
:class:`~repro.faults.schedule.FaultSchedule` or
:class:`~repro.faults.schedule.ChaosMonkey`, which own the seeded
streams).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.stats import Counter
from ..core.topology import Position
from ..phy.channel import Medium
from ..phy.propagation import PropagationModel


class DegradedPropagation(PropagationModel):
    """Wrap a base model with switchable extra attenuation.

    Fades attach to :class:`~repro.core.topology.Position` values: any
    link whose transmitter *or* receiver sits at a faded position loses
    the configured dB on top of the base model (both ends faded: the
    losses add).  A global fade applies to every link.  With no fades
    active, both domains return the base model's floats **unchanged**
    (not multiplied by 1.0), so wrapping a medium costs nothing and
    stays bit-identical until the first fade lands.

    Callers must invalidate the medium's links after every change —
    :class:`LinkFader` does this automatically.
    """

    def __init__(self, base: PropagationModel):
        self.base = base
        self._fades: Dict[Position, float] = {}
        self._global_db = 0.0

    def _extra_db(self, tx: Position, rx: Position) -> float:
        extra = self._global_db
        fades = self._fades
        if fades:
            extra += fades.get(tx, 0.0) + fades.get(rx, 0.0)
        return extra

    def path_loss_db(self, tx: Position, rx: Position) -> float:
        return self.base.path_loss_db(tx, rx) + self._extra_db(tx, rx)

    def link_gain(self, tx: Position, rx: Position) -> float:
        gain = self.base.link_gain(tx, rx)
        extra = self._extra_db(tx, rx)
        return gain if extra == 0.0 else gain * 10.0 ** (-0.1 * extra)

    def received_power_watts(self, tx_power_watts: float,
                             tx: Position, rx: Position) -> float:
        watts = self.base.received_power_watts(tx_power_watts, tx, rx)
        extra = self._extra_db(tx, rx)
        return watts if extra == 0.0 else watts * 10.0 ** (-0.1 * extra)


class LinkFader:
    """Timed attenuation fades on a medium.

    Wraps the medium's propagation model in
    :class:`DegradedPropagation` on first use (idempotent) and pairs
    every fade change with the LinkCache/plan invalidation that makes
    it visible to the compiled fan-out — without it, senders would keep
    transmitting against pre-fade link budgets.
    """

    def __init__(self, medium: Medium):
        if not isinstance(medium.propagation, DegradedPropagation):
            medium.propagation = DegradedPropagation(medium.propagation)
        self.medium = medium
        self.model: DegradedPropagation = medium.propagation
        self.counters = Counter()

    def fade(self, position: Position, loss_db: float) -> None:
        """Add ``loss_db`` of attenuation to every link touching
        ``position`` (replaces any existing fade there)."""
        self.model._fades[position] = loss_db
        self.medium.invalidate_links()
        self.counters.incr("fades")

    def clear(self, position: Position) -> None:
        """Remove the fade at ``position`` (no-op if none)."""
        if self.model._fades.pop(position, None) is not None:
            self.medium.invalidate_links()
            self.counters.incr("fades_cleared")

    def fade_all(self, loss_db: float) -> None:
        """Apply a global fade to every link (0.0 clears it)."""
        self.model._global_db = loss_db
        self.medium.invalidate_links()
        self.counters.incr("global_fades")

    def clear_all(self) -> None:
        """Remove every fade, global and positional."""
        self.model._fades.clear()
        self.model._global_db = 0.0
        self.medium.invalidate_links()
        self.counters.incr("fades_cleared_all")

    @property
    def active_fades(self) -> int:
        return len(self.model._fades) + (1 if self.model._global_db else 0)


def inject_queue_pressure(mac, fill: float = 1.0,
                          payload_bytes: int = 200,
                          destination=None) -> int:
    """Flood a MAC's interface queue with junk MSDUs.

    Models a runaway upper layer: the queue is filled to ``fill`` of
    its capacity with filler data frames toward ``destination``
    (default: the MAC's BSSID, i.e. the AP / the IBSS).  Returns how
    many MSDUs were accepted.  The frames are real — they contend,
    collide and get ACKed — so the victim's latency and drop behaviour
    under pressure is exercised end to end, not just the counter.
    """
    capacity = mac.queue.capacity
    target = min(int(capacity * fill), capacity)
    dest = destination if destination is not None else mac.bssid
    payload = bytes(payload_bytes)
    added = 0
    while len(mac.queue) < target:
        if not mac.send(dest, payload):
            break
        added += 1
    return added
