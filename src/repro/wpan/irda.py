"""IrDA: infrared point-to-point links.

IrDA (source text §2.1) is unidirectional in aim — a narrow (<30°)
cone — point-to-point, up to ~1 meter, with negotiated rates from
9600 b/s (the discovery rate every device supports) up to 16 Mb/s.
The geometric constraints are the interesting part to model: both
devices must be within range *and* each must lie inside the other's
half-angle cone, or the link simply does not form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.engine import Simulator
from ..core.errors import ConfigurationError, LinkError
from ..core.topology import Position
from ..core.units import kbps, mbps

#: Rates a device may support, lowest first (SIR ... VFIR).
IRDA_RATES_BPS = (
    kbps(9.6), kbps(115.2), mbps(0.576), mbps(1.152),
    mbps(4.0), mbps(16.0),
)
#: Discovery always happens at 9600 b/s.
DISCOVERY_RATE_BPS = kbps(9.6)
MAX_RANGE_M = 1.0
#: Half-angle of the emission/reception cone (< 30 degree full cone).
HALF_ANGLE_RAD = math.radians(15.0)


@dataclass
class IrdaDevice:
    """An IR endpoint: position plus the direction it points."""

    name: str
    position: Position
    #: Facing direction in radians (xy plane, from the +x axis).
    facing_rad: float
    max_rate_bps: float = mbps(4.0)

    def __post_init__(self) -> None:
        if self.max_rate_bps not in IRDA_RATES_BPS:
            raise ConfigurationError(
                f"unsupported IrDA rate {self.max_rate_bps}")

    def sees(self, other: "IrdaDevice",
             half_angle_rad: float = HALF_ANGLE_RAD) -> bool:
        """Is ``other`` inside this device's emission cone?"""
        bearing = self.position.bearing_to(other.position)
        offset = abs(_angle_difference(bearing, self.facing_rad))
        return offset <= half_angle_rad


def _angle_difference(a: float, b: float) -> float:
    """Signed smallest difference between two angles."""
    diff = (a - b + math.pi) % (2.0 * math.pi) - math.pi
    return diff


class IrdaLink:
    """A negotiated point-to-point IR link between two devices."""

    def __init__(self, sim: Simulator, a: IrdaDevice, b: IrdaDevice,
                 max_range_m: float = MAX_RANGE_M):
        distance = a.position.distance_to(b.position)
        if distance > max_range_m:
            raise LinkError(
                f"IrDA link {a.name}<->{b.name}: {distance:.2f} m exceeds "
                f"the {max_range_m:.1f} m range")
        if not a.sees(b):
            raise LinkError(f"{b.name} is outside {a.name}'s IR cone")
        if not b.sees(a):
            raise LinkError(f"{a.name} is outside {b.name}'s IR cone")
        self.sim = sim
        self.a = a
        self.b = b
        self.distance = distance
        #: Negotiation: the highest rate both ends support.
        self.rate_bps = min(a.max_rate_bps, b.max_rate_bps)
        self.bytes_transferred = 0
        self._busy_until = 0.0

    def discovery_time(self, frames: int = 6,
                       frame_bytes: int = 64) -> float:
        """Device discovery runs at 9600 b/s before rate negotiation."""
        return frames * frame_bytes * 8 / DISCOVERY_RATE_BPS

    def transfer_time(self, size_bytes: int,
                      overhead_per_frame: int = 8,
                      frame_bytes: int = 2048) -> float:
        """Time to move ``size_bytes`` across the negotiated link."""
        if size_bytes < 0:
            raise ConfigurationError("size must be non-negative")
        frames = max((size_bytes + frame_bytes - 1) // frame_bytes, 1)
        total_bits = (size_bytes + frames * overhead_per_frame) * 8
        return total_bits / self.rate_bps

    def transfer(self, size_bytes: int, on_done=None) -> float:
        """Schedule a transfer on the simulator; returns completion time."""
        start = max(self.sim.now, self._busy_until)
        duration = self.transfer_time(size_bytes)
        finish = start + duration
        self._busy_until = finish

        def _complete() -> None:
            self.bytes_transferred += size_bytes
            if on_done is not None:
                on_done(size_bytes)

        self.sim.schedule_at(finish, _complete)
        return finish
