"""Tests for the opt-in relaxed-math fast mode.

Fast mode (``Medium(..., exact=False)`` or ``Simulator(profile="fast")``)
keeps protocol semantics — frames are delivered, CCA edges fire, capture
works, seeded runs are deterministic — while relaxing ulp-compatibility
with the exact path.  These tests pin the switch plumbing, the
semantics, the determinism, and the sanity envelope of its stats
against exact mode.
"""

import pathlib
import sys

import pytest

from repro.core import Position, Simulator
from repro.core.engine import Simulator as KernelSimulator
from repro.core.errors import SimulationError
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss, LogDistance
from repro.phy.standards import DOT11B
from repro.phy.transceiver import PhyListener, Radio

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]
                       / "benchmarks"))

from perf.macro import dcf_saturation  # noqa: E402

MODE = DOT11B.modes[0]


class Collector(PhyListener):
    def __init__(self):
        self.received = []
        self.busy_edges = 0
        self.idle_edges = 0

    def phy_rx_end(self, payload, success, snr_db, mode):
        self.received.append((payload, success))

    def phy_cca_busy(self):
        self.busy_edges += 1

    def phy_cca_idle(self):
        self.idle_edges += 1


class TestSwitchPlumbing:
    def test_default_is_exact(self, sim):
        assert Medium(sim, FixedLoss(50.0)).exact is True

    def test_constructor_opt_in(self, sim):
        assert Medium(sim, FixedLoss(50.0), exact=False).exact is False

    def test_simulator_profile_opt_in(self):
        sim = Simulator(seed=1, profile="fast")
        assert Medium(sim, FixedLoss(50.0)).exact is False

    def test_explicit_exact_overrides_profile(self):
        sim = Simulator(seed=1, profile="fast")
        assert Medium(sim, FixedLoss(50.0), exact=True).exact is True

    def test_unknown_profile_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(seed=1, profile="warp")

    def test_fast_medium_binds_fast_arrival_slots(self, sim):
        medium = Medium(sim, FixedLoss(50.0), exact=False)
        radio = Radio("r", medium, DOT11B, Position(0, 0, 0))
        members = medium._channel_members(radio.channel_id)
        assert members[0][1].__func__ is Radio.arrival_begins_fast
        assert members[0][2].__func__ is Radio.arrival_ends_fast


class TestFastSemantics:
    def _pair(self, exact):
        sim = Simulator(seed=7)
        medium = Medium(sim, LogDistance(DOT11B.band_hz, exponent=3.0),
                        exact=exact)
        tx = Radio("tx", medium, DOT11B, Position(0, 0, 0))
        rx = Radio("rx", medium, DOT11B, Position(20, 0, 0))
        listener = Collector()
        rx.listener = listener
        return sim, tx, rx, listener

    def test_frame_delivery(self):
        sim, tx, rx, listener = self._pair(exact=False)
        tx.transmit("hello", 800, MODE)
        sim.run(until=0.1)
        assert listener.received == [("hello", True)]

    def test_cca_edges_fire(self):
        sim, tx, rx, listener = self._pair(exact=False)
        tx.transmit("x", 8000, MODE)
        sim.run(until=0.5)
        assert listener.busy_edges == 1
        assert listener.idle_edges == 1
        assert not rx.cca_busy()

    def test_capture_still_works(self):
        sim = Simulator(seed=7)
        medium = Medium(sim, LogDistance(2.4e9, exponent=3.0), exact=False)
        weak = Radio("weak", medium, DOT11B, Position(200, 0, 0))
        strong = Radio("strong", medium, DOT11B, Position(2, 0, 0))
        rx = Radio("rx", medium, DOT11B, Position(0, 0, 0))
        listener = Collector()
        rx.listener = listener
        sim.schedule(0.0, lambda: weak.transmit("weak", 8000, MODE))
        sim.schedule(0.0005, lambda: strong.transmit("strong", 8000, MODE))
        sim.run(until=0.5)
        assert ("strong", True) in listener.received

    def test_out_of_range_not_delivered(self):
        sim = Simulator(seed=7)
        medium = Medium(sim, LogDistance(DOT11B.band_hz, exponent=4.0),
                        exact=False)
        tx = Radio("tx", medium, DOT11B, Position(0, 0, 0))
        rx = Radio("rx", medium, DOT11B, Position(10_000, 0, 0))
        listener = Collector()
        rx.listener = listener
        tx.transmit("x", 800, MODE)
        sim.run(until=0.1)
        assert listener.received == []


class TestFastModeMacroSanity:
    """The seeded-stats sanity gate: fast-mode outcomes are documented
    as bit-INcompatible with exact mode, but delivery and collision
    figures must stay in the same physical regime (this is also what
    the CI fast-mode smoke job runs at reduced scale)."""

    SCALE = 0.25

    def test_deterministic_for_a_seed(self):
        first = dcf_saturation(self.SCALE, exact=False)
        second = dcf_saturation(self.SCALE, exact=False)
        assert first["stats"] == second["stats"]
        assert first["work"] == second["work"]

    def test_stats_stay_plausible_versus_exact(self):
        exact = dcf_saturation(self.SCALE, exact=True)["stats"]
        fast = dcf_saturation(self.SCALE, exact=False)["stats"]
        assert fast["rx_frames"] > 0
        assert fast["rx_bytes"] == 800 * fast["rx_frames"]
        # Same physical regime: saturation throughput within +/-20% of
        # the exact-mode figure at this scale.
        ratio = fast["rx_frames"] / exact["rx_frames"]
        assert 0.8 <= ratio <= 1.2, (exact, fast)
        # Kernel event counts stay comparable too (fast mode removes no
        # events; only float decisions are relaxed).
        events_ratio = fast["events"] / exact["events"]
        assert 0.8 <= events_ratio <= 1.2
