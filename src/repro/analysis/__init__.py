"""Metrics, airtime accounting, mesh path analysis, table rendering."""

from .airtime import AirtimeReport, SourceAirtime
from .mesh import (
    aggregate_mesh_counters,
    connectivity_graph,
    mesh_hop_histogram,
    path_stretch,
    per_link_airtime,
    per_link_load,
    shortest_hop_count,
)
from .metrics import (
    aggregate_throughput_bps,
    bianchi_saturation_throughput,
    bianchi_tau,
    delay_percentiles,
    jain_fairness,
)
from .tables import format_value, render_series, render_table

__all__ = [
    "AirtimeReport",
    "SourceAirtime",
    "aggregate_mesh_counters",
    "aggregate_throughput_bps",
    "bianchi_saturation_throughput",
    "bianchi_tau",
    "connectivity_graph",
    "delay_percentiles",
    "format_value",
    "jain_fairness",
    "mesh_hop_histogram",
    "path_stretch",
    "per_link_airtime",
    "per_link_load",
    "render_series",
    "render_table",
    "shortest_hop_count",
]
