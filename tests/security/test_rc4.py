"""Tests for the from-scratch RC4."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SecurityError
from repro.security.rc4 import crypt, keystream, ksa, prga


class TestKnownVectors:
    """Published RC4 test vectors."""

    @pytest.mark.parametrize("key,plaintext,ciphertext_hex", [
        (b"Key", b"Plaintext", "BBF316E8D940AF0AD3"),
        (b"Wiki", b"pedia", "1021BF0420"),
        (b"Secret", b"Attack at dawn", "45A01F645FC35B383552544B9BF5"),
    ])
    def test_vector(self, key, plaintext, ciphertext_hex):
        assert crypt(key, plaintext).hex().upper() == ciphertext_hex


class TestProperties:
    @given(st.binary(min_size=1, max_size=32), st.binary(max_size=500))
    def test_encrypt_decrypt_identity(self, key, data):
        assert crypt(key, crypt(key, data)) == data

    def test_ksa_is_a_permutation(self):
        state = ksa(b"any key")
        assert sorted(state) == list(range(256))

    def test_keystream_deterministic(self):
        assert keystream(b"k", 64) == keystream(b"k", 64)

    def test_different_keys_different_streams(self):
        assert keystream(b"key-one", 64) != keystream(b"key-two", 64)

    def test_prga_does_not_mutate_input_state(self):
        state = ksa(b"key")
        snapshot = list(state)
        generator = prga(state)
        for _ in range(100):
            next(generator)
        assert state == snapshot


class TestValidation:
    def test_empty_key_rejected(self):
        with pytest.raises(SecurityError):
            ksa(b"")

    def test_oversized_key_rejected(self):
        with pytest.raises(SecurityError):
            ksa(b"x" * 257)

    def test_negative_length_rejected(self):
        with pytest.raises(SecurityError):
            keystream(b"k", -1)
