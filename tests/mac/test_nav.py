"""Tests for the NAV (virtual carrier sense)."""

from repro.mac.nav import Nav


class TestNav:
    def test_initially_idle(self, sim):
        assert not Nav(sim).busy

    def test_busy_until_expiry(self, sim):
        nav = Nav(sim)
        nav.set_duration(0.5)
        assert nav.busy
        sim.run(until=0.6)
        assert not nav.busy

    def test_never_shortens(self, sim):
        nav = Nav(sim)
        nav.set_duration(1.0)
        nav.set_duration(0.2)  # shorter reservation must be ignored
        assert nav.until == 1.0

    def test_extends_forward(self, sim):
        nav = Nav(sim)
        nav.set_duration(0.2)
        nav.set_duration(1.0)
        assert nav.until == 1.0

    def test_expiry_callback_fires_once(self, sim):
        fired = []
        nav = Nav(sim, on_expire=lambda: fired.append(sim.now))
        nav.set_duration(0.5)
        sim.run(until=2.0)
        assert fired == [0.5]

    def test_extension_reschedules_callback(self, sim):
        fired = []
        nav = Nav(sim, on_expire=lambda: fired.append(sim.now))
        nav.set_duration(0.5)
        nav.set_duration(1.5)
        sim.run(until=2.0)
        assert fired == [1.5]

    def test_clear(self, sim):
        fired = []
        nav = Nav(sim, on_expire=lambda: fired.append(sim.now))
        nav.set_duration(0.5)
        nav.clear()
        sim.run(until=1.0)
        assert not nav.busy
        assert fired == []

    def test_set_until_absolute(self, sim):
        nav = Nav(sim)
        nav.set_until(3.25)
        assert nav.until == 3.25
        assert nav.busy
