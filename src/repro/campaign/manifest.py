"""The crash-safe resumable campaign manifest.

One JSON file per campaign, keyed by content-addressed job sha1::

    {
      "format": 1,
      "campaign": "hidden_terminal",
      "grid_sha1": "…",             # fingerprint of the expanded grid
      "jobs": {
        "<job sha1>": {"status": "done",   "row": {…}},
        "<job sha1>": {"status": "failed", "error": "…"}
      }
    }

Every state change is persisted with the classic atomic-rename recipe:
serialize to ``<path>.tmp`` in the same directory, fsync, then
``os.replace`` over the manifest.  A campaign killed at *any* instant
(including mid-write) therefore leaves either the previous manifest or
the new one — never a torn file — and a resume picks up exactly the
set of jobs whose completion reached the disk.

The manifest is the campaign's source of truth; the JSONL/CSV result
store is a *projection* of it (rewritten in grid order on every run),
which is what makes "interrupted + resumed" byte-identical to
"uninterrupted": both stores are the same deterministic function of
the same manifest rows.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Optional

from .spec import SpecError

__all__ = ["Manifest", "MANIFEST_FORMAT"]

MANIFEST_FORMAT = 1

DONE = "done"
FAILED = "failed"


def _atomic_write(path: pathlib.Path, text: str) -> None:
    """Write-then-rename in the target's directory (same filesystem)."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class Manifest:
    """Persistent done/failed ledger for one campaign grid."""

    def __init__(self, path: pathlib.Path, campaign: str, grid_sha1: str):
        self.path = pathlib.Path(path)
        self.campaign = campaign
        self.grid_sha1 = grid_sha1
        self.jobs: Dict[str, Dict[str, Any]] = {}

    # --- construction -----------------------------------------------------

    @classmethod
    def open(cls, path: pathlib.Path, campaign: str, grid_sha1: str,
             fresh: bool = False) -> "Manifest":
        """Load the manifest at ``path``, or start an empty one.

        ``fresh=True`` discards any previous state.  A manifest written
        for a *different* grid (edited spec: membership or order
        changed) raises instead of silently mixing two campaigns —
        content-addressed job keys make stale rows look deceptively
        valid otherwise.
        """
        manifest = cls(path, campaign, grid_sha1)
        if fresh or not manifest.path.exists():
            return manifest
        try:
            raw = json.loads(manifest.path.read_text())
        except ValueError as exc:
            raise SpecError("(manifest)",
                            f"{path} is not valid JSON ({exc}); "
                            f"remove it or rerun with fresh=True")
        if raw.get("format") != MANIFEST_FORMAT:
            raise SpecError("(manifest)",
                            f"{path} has format {raw.get('format')!r}, "
                            f"this build reads {MANIFEST_FORMAT}")
        if raw.get("grid_sha1") != grid_sha1:
            raise SpecError("(manifest)",
                            f"{path} was written for a different grid "
                            f"({raw.get('grid_sha1')!r:.14} vs "
                            f"{grid_sha1!r:.14}): the spec changed since "
                            f"that run; rerun with fresh=True to discard "
                            f"the old state")
        manifest.jobs = dict(raw.get("jobs", {}))
        return manifest

    # --- queries ----------------------------------------------------------

    def status(self, key: str) -> Optional[str]:
        entry = self.jobs.get(key)
        return entry["status"] if entry else None

    def is_done(self, key: str) -> bool:
        return self.status(key) == DONE

    def row(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self.jobs.get(key)
        if entry and entry["status"] == DONE:
            return entry["row"]
        return None

    def counts(self) -> Dict[str, int]:
        out = {DONE: 0, FAILED: 0}
        for entry in self.jobs.values():
            out[entry["status"]] = out.get(entry["status"], 0) + 1
        return out

    # --- updates ----------------------------------------------------------

    def record_done(self, key: str, row: Dict[str, Any]) -> None:
        self.jobs[key] = {"status": DONE, "row": row}
        self._persist()

    def record_failed(self, key: str, error: str) -> None:
        self.jobs[key] = {"status": FAILED, "error": error}
        self._persist()

    def _persist(self) -> None:
        payload = {
            "format": MANIFEST_FORMAT,
            "campaign": self.campaign,
            "grid_sha1": self.grid_sha1,
            "jobs": self.jobs,
        }
        _atomic_write(self.path,
                      json.dumps(payload, indent=2, sort_keys=True) + "\n")
