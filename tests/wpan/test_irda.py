"""Tests for IrDA point-to-point links."""

import math

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ConfigurationError, LinkError
from repro.core.units import kbps, mbps
from repro.wpan.irda import (
    IrdaDevice,
    IrdaLink,
    HALF_ANGLE_RAD,
    MAX_RANGE_M,
)


def facing_pair(distance=0.5, a_rate=mbps(4.0), b_rate=mbps(4.0)):
    a = IrdaDevice("a", Position(0, 0, 0), facing_rad=0.0,
                   max_rate_bps=a_rate)
    b = IrdaDevice("b", Position(distance, 0, 0), facing_rad=math.pi,
                   max_rate_bps=b_rate)
    return a, b


class TestGeometry:
    def test_facing_devices_connect(self, sim):
        a, b = facing_pair()
        link = IrdaLink(sim, a, b)
        assert link.distance == pytest.approx(0.5)

    def test_beyond_one_meter_fails(self, sim):
        a, b = facing_pair(distance=1.2)
        with pytest.raises(LinkError, match="range"):
            IrdaLink(sim, a, b)

    def test_misaligned_cone_fails(self, sim):
        a = IrdaDevice("a", Position(0, 0, 0), facing_rad=0.0)
        # b faces the same way as a (pointing away from it).
        b = IrdaDevice("b", Position(0.5, 0, 0), facing_rad=0.0)
        with pytest.raises(LinkError, match="cone"):
            IrdaLink(sim, a, b)

    def test_slightly_off_axis_within_cone(self, sim):
        # b sits 10 degrees off a's axis: inside the 15-degree half angle.
        angle = math.radians(10.0)
        b_position = Position(0.5 * math.cos(angle),
                              0.5 * math.sin(angle), 0)
        a = IrdaDevice("a", Position(0, 0, 0), facing_rad=0.0)
        b = IrdaDevice("b", b_position, facing_rad=angle + math.pi)
        IrdaLink(sim, a, b)  # should not raise

    def test_sees_respects_half_angle(self):
        a = IrdaDevice("a", Position(0, 0, 0), facing_rad=0.0)
        inside = IrdaDevice("in", Position(1, 0.1, 0), facing_rad=math.pi)
        outside = IrdaDevice("out", Position(0, 1, 0), facing_rad=-math.pi / 2)
        assert a.sees(inside)
        assert not a.sees(outside)


class TestRateNegotiation:
    def test_lowest_common_rate_wins(self, sim):
        a, b = facing_pair(a_rate=mbps(16.0), b_rate=kbps(115.2))
        link = IrdaLink(sim, a, b)
        assert link.rate_bps == kbps(115.2)

    def test_unsupported_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            IrdaDevice("x", Position(0, 0, 0), facing_rad=0.0,
                       max_rate_bps=12345.0)

    def test_discovery_runs_at_9600(self, sim):
        a, b = facing_pair()
        link = IrdaLink(sim, a, b)
        # 6 frames of 64 bytes at 9600 b/s = 0.32 s.
        assert link.discovery_time() == pytest.approx(0.32)


class TestTransfer:
    def test_transfer_time_scales_with_rate(self, sim):
        a_fast, b_fast = facing_pair(a_rate=mbps(16.0), b_rate=mbps(16.0))
        fast = IrdaLink(sim, a_fast, b_fast)
        a_slow, b_slow = facing_pair(a_rate=kbps(115.2), b_rate=kbps(115.2))
        slow = IrdaLink(sim, a_slow, b_slow)
        size = 100_000
        assert fast.transfer_time(size) < slow.transfer_time(size) / 100

    def test_transfer_completes_on_simulator(self, sim):
        a, b = facing_pair()
        link = IrdaLink(sim, a, b)
        done = []
        link.transfer(10_000, on_done=done.append)
        sim.run(until=10.0)
        assert done == [10_000]
        assert link.bytes_transferred == 10_000

    def test_transfers_serialize_on_the_link(self, sim):
        a, b = facing_pair()
        link = IrdaLink(sim, a, b)
        first_done = link.transfer(10_000)
        second_done = link.transfer(10_000)
        assert second_done > first_done

    def test_negative_size_rejected(self, sim):
        a, b = facing_pair()
        link = IrdaLink(sim, a, b)
        with pytest.raises(ConfigurationError):
            link.transfer_time(-1)
