"""Tests for the automatic shard partitioner."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.topology import Position
from repro.core.units import SPEED_OF_LIGHT
from repro.parallel import CellSpec, find_couplings, partition_cells
from repro.phy.propagation import LogDistance


def _noop_build(ctx):
    return lambda: {}


def cell(name, channel, x, y=0.0, radius=10.0, weight=1.0, power=20.0):
    return CellSpec(name, channel, Position(x, y, 0.0), radius,
                    _noop_build, weight=weight, max_tx_power_dbm=power)


def urban():
    return LogDistance(2.4e9, exponent=4.0)


def free_space():
    return LogDistance(2.4e9, exponent=2.0)


class TestCouplings:
    def test_orthogonal_channels_never_couple(self):
        cells = (cell("a", 1, 0.0), cell("b", 6, 1.0))
        assert find_couplings(cells, free_space(), -110.0) == ()

    def test_close_same_channel_couples(self):
        cells = (cell("a", 1, 0.0), cell("b", 1, 100.0))
        (coupling,) = find_couplings(cells, free_space(), -110.0)
        assert coupling.cell_a == "a" and coupling.cell_b == "b"
        # Closest approach: center distance minus both radii.
        assert coupling.distance_m == 80.0
        assert coupling.delay_s == 80.0 / SPEED_OF_LIGHT

    def test_beyond_energy_floor_decouples(self):
        # Exponent-4 loss across >200 m clears -110 dBm at 20 dBm tx.
        cells = (cell("a", 1, 0.0), cell("b", 1, 240.0))
        assert find_couplings(cells, urban(), -110.0) == ()

    def test_probe_uses_strongest_cell_power(self):
        base = (cell("a", 1, 0.0), cell("b", 1, 240.0))
        assert find_couplings(base, urban(), -110.0) == ()
        loud = (cell("a", 1, 0.0), cell("b", 1, 240.0, power=40.0))
        assert len(find_couplings(loud, urban(), -110.0)) == 1

    def test_overlapping_discs_clamp_to_min_distance(self):
        cells = (cell("a", 1, 0.0), cell("b", 1, 5.0))
        (coupling,) = find_couplings(cells, free_space(), -110.0)
        assert coupling.distance_m == 1.0


class TestAutomaticPartition:
    def test_decoupled_cells_spread_over_workers(self):
        cells = [cell(f"c{i}", 1, 300.0 * i) for i in range(6)]
        plan = partition_cells(cells, urban(), workers=3)
        assert len(plan.shards) == 3
        assert sorted(len(shard) for shard in plan.shards) == [2, 2, 2]
        assert not plan.coupled
        assert plan.min_lookahead == float("inf")

    def test_coupled_group_stays_on_one_shard(self):
        cells = [cell("a", 1, 0.0), cell("b", 1, 100.0),
                 cell("c", 6, 0.0), cell("d", 6, 100.0)]
        plan = partition_cells(cells, free_space(), workers=4)
        assert plan.shard_of["a"] == plan.shard_of["b"]
        assert plan.shard_of["c"] == plan.shard_of["d"]
        assert plan.shard_of["a"] != plan.shard_of["c"]
        assert not plan.coupled  # cross-shard pairs are orthogonal

    def test_weight_balancing_is_lpt(self):
        cells = [cell("heavy", 1, 0.0, weight=10.0),
                 cell("l1", 1, 1000.0, weight=1.0),
                 cell("l2", 1, 2000.0, weight=1.0),
                 cell("l3", 1, 3000.0, weight=1.0)]
        plan = partition_cells(cells, urban(), workers=2)
        heavy_shard = plan.shard_of["heavy"]
        # The three light cells all pack opposite the heavy one.
        assert {plan.shard_of[f"l{i}"] for i in (1, 2, 3)} \
            == {1 - heavy_shard}

    def test_partition_is_deterministic(self):
        cells = [cell(f"c{i}", 1, 400.0 * i, weight=float(i % 3 + 1))
                 for i in range(9)]
        first = partition_cells(cells, urban(), workers=4)
        second = partition_cells(list(reversed(cells)), urban(), workers=4)
        assert first.describe() == second.describe()

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            partition_cells([cell("a", 1, 0.0), cell("a", 6, 500.0)],
                            urban(), workers=2)

    def test_empty_and_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="no cells"):
            partition_cells([], urban(), workers=2)
        with pytest.raises(ConfigurationError, match="workers"):
            partition_cells([cell("a", 1, 0.0)], urban(), workers=0)


class TestManualOverride:
    def test_manual_assignment_is_respected(self):
        cells = [cell("a", 1, 0.0), cell("b", 1, 100.0)]
        plan = partition_cells(cells, free_space(), workers=2,
                               manual={"a": 0, "b": 1})
        assert plan.shard_of == {"a": 0, "b": 1}
        # Splitting a coupled pair yields a finite directed lookahead.
        assert plan.coupled
        assert plan.lookahead[(0, 1)] == 80.0 / SPEED_OF_LIGHT
        assert plan.lookahead[(1, 0)] == 80.0 / SPEED_OF_LIGHT
        assert plan.export_channels[0] == frozenset({1})
        assert plan.routes[(0, 1)] == (1,)

    def test_manual_missing_cell_rejected(self):
        cells = [cell("a", 1, 0.0), cell("b", 1, 500.0)]
        with pytest.raises(ConfigurationError, match="missing"):
            partition_cells(cells, urban(), workers=2, manual={"a": 0})

    def test_manual_unknown_cell_rejected(self):
        cells = [cell("a", 1, 0.0)]
        with pytest.raises(ConfigurationError, match="unknown"):
            partition_cells(cells, urban(), workers=2,
                            manual={"a": 0, "ghost": 1})

    def test_manual_out_of_range_rejected(self):
        cells = [cell("a", 1, 0.0)]
        with pytest.raises(ConfigurationError, match="out of range"):
            partition_cells(cells, urban(), workers=2, manual={"a": 5})

    def test_manual_gap_rejected(self):
        cells = [cell("a", 1, 0.0), cell("b", 1, 500.0)]
        with pytest.raises(ConfigurationError, match="empty"):
            partition_cells(cells, urban(), workers=3,
                            manual={"a": 0, "b": 2})


class TestShardPlan:
    def test_incoming_lists_directed_sources(self):
        cells = [cell("a", 1, 0.0), cell("b", 1, 100.0)]
        plan = partition_cells(cells, free_space(), workers=2,
                               manual={"a": 0, "b": 1})
        assert plan.incoming(0) == {1: 80.0 / SPEED_OF_LIGHT}
        assert plan.incoming(1) == {0: 80.0 / SPEED_OF_LIGHT}

    def test_index_of_is_global_and_name_sorted(self):
        cells = [cell("b", 1, 500.0), cell("a", 6, 0.0)]
        plan = partition_cells(cells, urban(), workers=2)
        assert plan.index_of("a") == 0
        assert plan.index_of("b") == 1
        with pytest.raises(KeyError):
            plan.index_of("ghost")
