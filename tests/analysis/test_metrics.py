"""Tests for analysis metrics and table rendering."""

import math

import pytest

from repro.analysis.metrics import (
    aggregate_throughput_bps,
    bianchi_saturation_throughput,
    bianchi_tau,
    delay_percentiles,
)
from repro.analysis.tables import render_series, render_table
from repro.phy.standards import DOT11B


class TestBianchi:
    def test_tau_single_station(self):
        # One station never collides: tau = 2/(W+1).
        tau = bianchi_tau(1, cw_min=31)
        assert tau == pytest.approx(2.0 / 33.0)

    def test_tau_decreases_with_population(self):
        taus = [bianchi_tau(n, cw_min=31) for n in (1, 2, 5, 10, 25, 50)]
        assert taus == sorted(taus, reverse=True)

    def test_tau_in_unit_interval(self):
        for n in (1, 3, 10, 40):
            assert 0.0 < bianchi_tau(n, cw_min=31) < 1.0

    def test_invalid_population_rejected(self):
        with pytest.raises(ValueError):
            bianchi_tau(0, cw_min=31)

    def test_saturation_throughput_shape(self):
        """The canonical Bianchi curve: a gentle decline with n."""
        rates = [bianchi_saturation_throughput(n, DOT11B,
                                               payload_bytes=1000,
                                               data_rate_bps=11e6)
                 for n in (1, 5, 10, 20, 50)]
        assert all(rate > 0 for rate in rates)
        # Monotone decline after the initial point.
        assert rates[1] > rates[2] > rates[3] > rates[4]
        # And everything is below the raw link rate.
        assert all(rate < 11e6 for rate in rates)

    def test_rts_beats_basic_for_large_payloads_many_stations(self):
        # Bianchi's classic setting: a 1 Mb/s channel, where a collided
        # 2000-byte payload wastes 16 ms but a collided RTS only ~0.4 ms.
        basic = bianchi_saturation_throughput(30, DOT11B, 2000, 1e6,
                                              use_rts=False)
        rts = bianchi_saturation_throughput(30, DOT11B, 2000, 1e6,
                                            use_rts=True)
        assert rts > basic

    def test_basic_beats_rts_for_small_payloads_few_stations(self):
        basic = bianchi_saturation_throughput(2, DOT11B, 100, 11e6,
                                              use_rts=False)
        rts = bianchi_saturation_throughput(2, DOT11B, 100, 11e6,
                                            use_rts=True)
        assert basic > rts


class TestSimpleMetrics:
    def test_aggregate_throughput(self):
        assert aggregate_throughput_bps([1000, 2000], window=2.0) == \
            (3000 * 8) / 2.0

    def test_aggregate_validation(self):
        with pytest.raises(ValueError):
            aggregate_throughput_bps([1], window=0.0)

    def test_delay_percentiles(self):
        samples = [float(value) for value in range(1, 101)]
        result = delay_percentiles(samples, fractions=(0.5, 0.99))
        assert result[0.5] == pytest.approx(50.5)
        assert result[0.99] == pytest.approx(99.01)

    def test_delay_percentiles_empty(self):
        result = delay_percentiles([])
        assert all(math.isnan(value) for value in result.values())


class TestTables:
    def test_render_table_structure(self):
        text = render_table("Demo", ["name", "value"],
                            [["alpha", 1.2345], ["beta", 2.0]],
                            formats=[None, ".2f"])
        assert "== Demo ==" in text
        assert "| alpha" in text
        assert "1.23" in text
        lines = text.splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # perfectly aligned box

    def test_render_none_as_dash(self):
        text = render_table("t", ["a"], [[None]])
        assert "| -" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table("t", ["a", "b"], [["only one"]])

    def test_render_series(self):
        text = render_series("Fig", "x", ["y1", "y2"],
                             [[1, 10.0, 20.0], [2, 11.0, 21.0]],
                             formats=[None, ".1f", ".1f"])
        assert "Fig" in text
        assert "10.0" in text
