"""Tests for WEP and its attacks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import IntegrityError, SecurityError
from repro.security.wep import (
    FmsAttack,
    SNAP_FIRST_BYTE,
    WeakIvSample,
    WeakIvTrafficOracle,
    WepCipher,
    crack_wep,
    first_keystream_byte,
    forge_bitflip,
    is_weak_iv,
)

KEY40 = b"\x01\x02\x03\x04\x05"
KEY104 = bytes(range(13))


class TestWepCipher:
    @given(st.binary(min_size=1, max_size=300))
    @settings(max_examples=30)
    def test_round_trip(self, plaintext):
        cipher = WepCipher(KEY40)
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    def test_104_bit_key(self):
        cipher = WepCipher(KEY104)
        assert cipher.decrypt(cipher.encrypt(b"data")) == b"data"

    def test_tampering_detected(self):
        cipher = WepCipher(KEY40)
        body = bytearray(cipher.encrypt(b"original message"))
        body[10] ^= 0xFF
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(body))

    def test_wrong_key_fails_icv(self):
        body = WepCipher(KEY40).encrypt(b"secret")
        with pytest.raises(IntegrityError):
            WepCipher(b"\x05\x04\x03\x02\x01").decrypt(body)

    def test_sequential_iv(self):
        cipher = WepCipher(KEY40)
        assert cipher.next_iv() == b"\x00\x00\x00"
        assert cipher.next_iv() == b"\x00\x00\x01"

    def test_overhead_is_eight_bytes(self):
        cipher = WepCipher(KEY40)
        assert len(cipher.encrypt(b"x" * 50)) == 50 + 8

    def test_bad_key_length_rejected(self):
        with pytest.raises(SecurityError):
            WepCipher(b"\x00" * 6)

    def test_same_plaintext_different_iv_different_ciphertext(self):
        cipher = WepCipher(KEY40)
        assert cipher.encrypt(b"repeat") != cipher.encrypt(b"repeat")


class TestBitFlipAttack:
    """CRC linearity lets an attacker alter frames without the key."""

    def test_forged_frame_passes_icv(self):
        cipher = WepCipher(KEY40)
        body = cipher.encrypt(b"PAY 0001 TO MALLORY")
        delta = bytes(4) + bytes(a ^ b for a, b in zip(b"0001", b"9999"))
        forged = forge_bitflip(body, delta)
        assert cipher.decrypt(forged) == b"PAY 9999 TO MALLORY"

    def test_forgery_without_knowing_the_key(self):
        """The attacker only touches ciphertext bytes."""
        cipher = WepCipher(KEY104)
        body = cipher.encrypt(b"\xaa12345678")
        forged = forge_bitflip(body, b"\x00\xff")
        decrypted = cipher.decrypt(forged)  # no IntegrityError
        assert decrypted[1] == ord("1") ^ 0xFF

    def test_oversized_delta_rejected(self):
        cipher = WepCipher(KEY40)
        body = cipher.encrypt(b"ab")
        with pytest.raises(SecurityError):
            forge_bitflip(body, bytes(10))


class TestWeakIvMachinery:
    def test_weak_iv_classification(self):
        assert is_weak_iv(b"\x03\xff\x07", key_byte_index=0)
        assert is_weak_iv(b"\x07\xff\x20", key_byte_index=4)
        assert not is_weak_iv(b"\x03\xfe\x07", key_byte_index=0)
        assert not is_weak_iv(b"\x04\xff\x07", key_byte_index=0)

    def test_first_keystream_byte_recovery(self):
        cipher = WepCipher(KEY40)
        iv = b"\x03\xff\x11"
        body = cipher.encrypt(bytes([SNAP_FIRST_BYTE]) + b"rest", iv=iv)
        from repro.security.rc4 import keystream
        expected = keystream(iv + KEY40, 1)[0]
        assert first_keystream_byte(body) == expected

    def test_oracle_counts_all_frames_but_yields_weak_only(self):
        oracle = WeakIvTrafficOracle(WepCipher(KEY40))
        samples = list(oracle.sniff_weak_samples(1 << 16))
        assert oracle.frames_observed == 1 << 16
        assert all(any(is_weak_iv(s.iv, i) for i in range(5))
                   for s in samples)

    def test_attack_rejects_weird_key_length(self):
        with pytest.raises(SecurityError):
            FmsAttack(key_len=7)


class TestFmsAttack:
    def test_insufficient_samples_returns_none(self):
        attack = FmsAttack(key_len=5, min_votes=60)
        attack.observe(WeakIvSample(b"\x03\xff\x01", 0x42))
        assert attack.recover_key() is None

    @pytest.mark.slow
    def test_recovers_40_bit_key(self):
        key = b"\x13\x37\xbe\xef\x42"
        recovered, frames = crack_wep(WepCipher(key), max_frames=1 << 24)
        assert recovered == key
        assert frames <= 1 << 24

    @pytest.mark.slow
    def test_recovers_a_different_key(self):
        key = b"\xc0\xff\xee\x00\x99"
        recovered, _frames = crack_wep(WepCipher(key), max_frames=1 << 24)
        assert recovered == key

    def test_budget_exhaustion_reports_failure(self):
        key = b"\x01\x02\x03\x04\x05"
        recovered, frames = crack_wep(WepCipher(key), max_frames=1 << 12)
        assert recovered is None
        assert frames == 1 << 12
