"""Monitor mode: promiscuous capture without ever keying the radio.

A :class:`MonitorRadio` is the simulator's equivalent of an interface
in monitor mode under a packet sniffer: a receive-only radio that
records **every** frame it can decode on its channel — regardless of
addressing — into a :class:`CaptureLog`, never ACKing, never
transmitting, never associating.  Optionally it also records frames the
error model corrupted (the ``ok=False`` rows a real capture shows as
bad-FCS frames).

The capture log is the observation surface the security layer audits:
:meth:`CaptureLog.weak_iv_samples` turns captured WEP-protected bodies
into the :class:`~repro.security.wep.WeakIvSample` stream
:class:`~repro.security.wep.FmsAttack` consumes, and
:meth:`CaptureLog.to_jsonl` serializes deterministically so seeded
captures can be byte-compared (the CI determinism step).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional

from ..core.engine import Simulator
from ..core.stats import Counter
from ..core.topology import Position
from ..mac.frames import Dot11Frame, FrameType
from ..phy.channel import Medium
from ..phy.interference import CaptureModel
from ..phy.standards import PhyMode, PhyStandard
from ..phy.transceiver import Radio, RadioConfig
from ..security.wep import WeakIvSample, WEP_OVERHEAD, first_keystream_byte

#: Hook fired for every captured record (live analysis taps).
CaptureHook = Callable[["CaptureRecord"], None]


@dataclass(frozen=True)
class CaptureRecord:
    """One captured frame, flattened to plain fields for serialization."""

    time: float
    channel: int
    ok: bool
    snr_db: float
    type: int
    subtype: int
    duration_us: int
    addr1: str
    addr2: Optional[str]
    addr3: Optional[str]
    sequence: int
    fragment: int
    retry: bool
    protected: bool
    size_bytes: int
    #: Frame body, retained only when the log keeps bodies (the
    #: security-audit feed needs WEP bodies; bulk captures may not).
    body: Optional[bytes] = None

    def to_json(self) -> str:
        """One deterministic JSON line (times repr-exact, body hex)."""
        payload = {
            "time": repr(self.time),
            "channel": self.channel,
            "ok": self.ok,
            "snr_db": repr(self.snr_db),
            "type": self.type,
            "subtype": self.subtype,
            "duration_us": self.duration_us,
            "addr1": self.addr1,
            "addr2": self.addr2,
            "addr3": self.addr3,
            "seq": self.sequence,
            "frag": self.fragment,
            "retry": self.retry,
            "protected": self.protected,
            "size": self.size_bytes,
        }
        if self.body is not None:
            payload["body"] = self.body.hex()
        return json.dumps(payload, sort_keys=True)


class CaptureLog:
    """An append-only capture with filters and deterministic dumps."""

    def __init__(self, keep_bodies: bool = True,
                 capacity: Optional[int] = None):
        self.keep_bodies = keep_bodies
        self.capacity = capacity
        self.records: List[CaptureRecord] = []
        self.counters = Counter()
        self.dropped = 0

    def append(self, record: CaptureRecord) -> None:
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(record)
        self.counters.incr("frames")
        if not record.ok:
            self.counters.incr("corrupt")
        if record.protected:
            self.counters.incr("protected")
        if record.type == FrameType.MANAGEMENT:
            self.counters.incr("management")
        elif record.type == FrameType.CONTROL:
            self.counters.incr("control")
        else:
            self.counters.incr("data")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CaptureRecord]:
        return iter(self.records)

    # --- filters ---------------------------------------------------------

    def data_frames(self) -> List[CaptureRecord]:
        return [r for r in self.records if r.type == FrameType.DATA]

    def management_frames(self) -> List[CaptureRecord]:
        return [r for r in self.records if r.type == FrameType.MANAGEMENT]

    def control_frames(self) -> List[CaptureRecord]:
        return [r for r in self.records if r.type == FrameType.CONTROL]

    def from_transmitter(self, address: str) -> List[CaptureRecord]:
        return [r for r in self.records if r.addr2 == address]

    # --- security-audit feed ---------------------------------------------

    def protected_bodies(self) -> List[bytes]:
        """Bodies of successfully captured protected (WEP bit) frames."""
        return [r.body for r in self.records
                if r.ok and r.protected and r.body is not None]

    def weak_iv_samples(self) -> List[WeakIvSample]:
        """FMS-ready samples from the captured WEP traffic.

        Exactly what a wardriving sniffer feeds
        :class:`~repro.security.wep.FmsAttack`: the 3-byte IV in clear
        plus the first keystream byte recovered from the known SNAP
        plaintext.  Bodies too short to be WEP encapsulations are
        skipped.
        """
        samples = []
        for body in self.protected_bodies():
            if len(body) < WEP_OVERHEAD:
                continue
            samples.append(WeakIvSample(
                iv=body[:3],
                first_keystream_byte=first_keystream_byte(body)))
        return samples

    # --- dumps ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The whole capture as deterministic JSON lines.

        Seeded runs produce byte-identical dumps (repr-exact floats,
        sorted keys), which is the contract the CI monitor-capture
        determinism step byte-compares.
        """
        return "\n".join(record.to_json() for record in self.records) + "\n"

    def summary(self) -> dict:
        """Counter snapshot plus span (diagnostics / example output)."""
        summary = dict(sorted(self.counters.as_dict().items()))
        summary["dropped"] = self.dropped
        if self.records:
            summary["first"] = self.records[0].time
            summary["last"] = self.records[-1].time
        return summary


class MonitorRadio:
    """A receive-only promiscuous radio feeding a :class:`CaptureLog`.

    Not a :class:`~repro.net.device.WirelessDevice`: there is no MAC,
    so nothing is ever ACKed, NAV is never set, and the capture leaves
    the victim network's contention behavior untouched except for the
    two arrival events per frame every attached co-channel radio costs.

    Physical-layer capture is *disabled* on the monitor's radio by
    default: a capturing receiver abandons a locked frame for a
    stronger late arrival without ever upcalling it, which would make
    exactly the frames a jammer stomps vanish from the log instead of
    showing up as the ``ok=False`` bad-FCS rows a sniffer reports.
    Pass an explicit ``radio_config`` to opt back into capture.
    """

    def __init__(self, sim: Simulator, medium: Medium,
                 standard: PhyStandard, position: Position,
                 channel_id: int = 1, name: str = "monitor",
                 capture_corrupt: bool = False,
                 log: Optional[CaptureLog] = None,
                 radio_config: Optional[RadioConfig] = None):
        self.sim = sim
        self.name = name
        self.capture_corrupt = capture_corrupt
        self.log = log if log is not None else CaptureLog()
        if radio_config is None:
            radio_config = RadioConfig(capture=CaptureModel(enabled=False))
        self.radio = Radio(name, medium, standard, position,
                           channel_id=channel_id, config=radio_config)
        self.radio.on_rx_end = self._rx_end
        #: Optional live tap, fired after each record is logged.
        self.on_capture: Optional[CaptureHook] = None

    @property
    def position(self) -> Position:
        return self.radio.position

    @property
    def channel_id(self) -> int:
        return self.radio.channel_id

    def retune(self, channel_id: int) -> None:
        """Hop to another channel (channel-surveying captures)."""
        self.radio.channel_id = channel_id

    def allow_decoding(self, standard: PhyStandard) -> None:
        """Additionally capture another standard's modes (b/g mix)."""
        self.radio.allow_decoding(standard)

    def _rx_end(self, payload: Any, success: bool, snr_db: float,
                mode: PhyMode) -> None:
        if not isinstance(payload, Dot11Frame):
            return  # foreign-PHY traffic: energy only, nothing to log
        if not success and not self.capture_corrupt:
            return
        frame = payload
        keep_body = self.log.keep_bodies and success
        record = CaptureRecord(
            time=self.sim.now,
            channel=self.radio.channel_id,
            ok=success,
            snr_db=snr_db,
            type=int(frame.fc.type),
            subtype=frame.fc.subtype,
            duration_us=frame.duration_us,
            addr1=str(frame.addr1),
            addr2=str(frame.addr2) if frame.addr2 is not None else None,
            addr3=str(frame.addr3) if frame.addr3 is not None else None,
            sequence=frame.seq.sequence,
            fragment=frame.seq.fragment,
            retry=frame.fc.retry,
            protected=frame.fc.protected,
            size_bytes=frame.wire_size_bytes(),
            body=frame.body if keep_body else None,
        )
        self.log.append(record)
        if self.on_capture is not None:
            self.on_capture(record)
