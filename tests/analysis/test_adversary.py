"""Adversarial impact metrics: PDR deltas, duty curves, spatial grids."""

import math

import pytest

from repro.analysis.adversary import (
    AttackImpact,
    aggregate_impact,
    duty_cycle_sweep,
    per_station_impact,
    render_duty_curve,
    render_impact_table,
    render_pdr_grid,
    spatial_pdr_grid,
)
from repro.core.topology import Position


class TestAttackImpact:
    def test_pdr_and_degradation(self):
        impact = AttackImpact(baseline_offered=100, baseline_delivered=90,
                              attacked_offered=100, attacked_delivered=45)
        assert impact.baseline_pdr == 0.9
        assert impact.attacked_pdr == 0.45
        assert impact.pdr_delta == pytest.approx(0.45)
        assert impact.degradation == pytest.approx(0.5)

    def test_zero_offered_is_nan_not_crash(self):
        impact = AttackImpact(0, 0, 0, 0)
        assert math.isnan(impact.baseline_pdr)
        assert math.isnan(impact.attacked_pdr)
        assert math.isnan(impact.degradation)

    def test_throughput_ratio(self):
        impact = AttackImpact(10, 10, 10, 5)
        assert impact.throughput_ratio(1000, 400) == 0.4
        assert math.isnan(impact.throughput_ratio(0, 400))


class TestPerStationImpact:
    def test_joins_on_station_name(self):
        baseline = {"sta0": (100, 95), "sta1": (100, 90),
                    "only-baseline": (10, 10)}
        attacked = {"sta0": (100, 20), "sta1": (100, 80)}
        impacts = per_station_impact(baseline, attacked)
        assert set(impacts) == {"sta0", "sta1"}
        assert impacts["sta0"].attacked_delivered == 20

    def test_aggregate_sums_counts(self):
        impacts = per_station_impact(
            {"a": (10, 10), "b": (10, 8)},
            {"a": (10, 5), "b": (10, 1)})
        total = aggregate_impact(impacts)
        assert total.baseline_offered == 20
        assert total.baseline_delivered == 18
        assert total.attacked_delivered == 6
        assert total.pdr_delta == pytest.approx(0.6)

    def test_render_sorts_worst_first(self):
        impacts = per_station_impact(
            {"mild": (10, 10), "hurt": (10, 10)},
            {"mild": (10, 9), "hurt": (10, 1)})
        table = render_impact_table("t", impacts)
        assert table.index("hurt") < table.index("mild")


class TestDutyCurve:
    def test_sweep_runs_in_order(self):
        seen = []

        def run(duty):
            seen.append(duty)
            return 1000.0 * (1.0 - duty)

        curve = duty_cycle_sweep(run, [0.25, 0.5, 0.75])
        assert seen == [0.25, 0.5, 0.75]
        assert curve == [(0.25, 750.0), (0.5, 500.0), (0.75, 250.0)]
        assert "duty" in render_duty_curve(curve)


class TestSpatialGrid:
    def test_bins_mean_pdr_per_cell(self):
        grid = spatial_pdr_grid(
            [(Position(1, 1, 0), 0.9), (Position(2, 3, 0), 0.7),
             (Position(12, 1, 0), 0.1)], cell_m=10.0)
        assert grid[(0, 0)] == pytest.approx(0.8)
        assert grid[(1, 0)] == pytest.approx(0.1)

    def test_negative_coordinates_bin_southwest(self):
        grid = spatial_pdr_grid([(Position(-1, -1, 0), 0.5)], cell_m=10.0)
        assert grid == {(-1, -1): 0.5}

    def test_cell_size_validation(self):
        with pytest.raises(ValueError):
            spatial_pdr_grid([], cell_m=0.0)

    def test_render_shows_values_and_gaps(self):
        rendered = render_pdr_grid({(0, 0): 0.25, (2, 1): 1.0})
        lines = rendered.splitlines()
        assert len(lines) == 2  # rows 1 (top) and 0
        assert "1.00" in lines[0]
        assert "0.25" in lines[1]
        assert render_pdr_grid({}) == "(empty grid)"
