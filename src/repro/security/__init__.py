"""Link-layer security: ciphers, suites, key management, attack harness."""

from .aes import Aes128, BLOCK_SIZE, expand_key
from .audit import (
    AttackReport,
    audit_ccmp,
    audit_open,
    audit_tkip,
    audit_wep,
    audit_wps,
    ranking_reports,
    verify_text_ranking,
)
from .ccmp import CCMP_OVERHEAD, CcmpCipher, ccm_decrypt, ccm_encrypt
from .handshake import (
    FourWayHandshake,
    HandshakeResult,
    PairwiseKeys,
    WpsRegistrar,
    derive_psk,
    derive_ptk,
    make_wps_pin,
    prf,
    wps_checksum_digit,
    wps_pin_attack,
)
from .michael import MIC_LEN, MichaelCountermeasures, michael
from .rc4 import crypt as rc4_crypt
from .rc4 import keystream as rc4_keystream
from .rc4 import ksa, prga
from .shared_key_auth import (
    CHALLENGE_LEN,
    CapturedExchange,
    KeystreamThief,
    SharedKeyAuthenticator,
    SharedKeyClient,
    run_legitimate_exchange,
)
from .suites import (
    LinkSecurity,
    SUITE_OVERHEAD,
    SecuritySuite,
    build_link_security,
)
from .tkip import TKIP_OVERHEAD, TkipCipher, phase1_mix, phase2_mix
from .wep import (
    FmsAttack,
    WEP_OVERHEAD,
    WeakIvSample,
    WeakIvTrafficOracle,
    WepCipher,
    crack_wep,
    first_keystream_byte,
    forge_bitflip,
    is_weak_iv,
)

__all__ = [
    "Aes128",
    "AttackReport",
    "BLOCK_SIZE",
    "CHALLENGE_LEN",
    "CapturedExchange",
    "KeystreamThief",
    "SharedKeyAuthenticator",
    "SharedKeyClient",
    "run_legitimate_exchange",
    "CCMP_OVERHEAD",
    "CcmpCipher",
    "FmsAttack",
    "FourWayHandshake",
    "HandshakeResult",
    "LinkSecurity",
    "MIC_LEN",
    "MichaelCountermeasures",
    "PairwiseKeys",
    "SUITE_OVERHEAD",
    "SecuritySuite",
    "TKIP_OVERHEAD",
    "TkipCipher",
    "WEP_OVERHEAD",
    "WeakIvSample",
    "WeakIvTrafficOracle",
    "WepCipher",
    "WpsRegistrar",
    "audit_ccmp",
    "audit_open",
    "audit_tkip",
    "audit_wep",
    "audit_wps",
    "build_link_security",
    "ccm_decrypt",
    "ccm_encrypt",
    "crack_wep",
    "derive_psk",
    "derive_ptk",
    "expand_key",
    "first_keystream_byte",
    "forge_bitflip",
    "is_weak_iv",
    "ksa",
    "make_wps_pin",
    "michael",
    "phase1_mix",
    "phase2_mix",
    "prf",
    "prga",
    "ranking_reports",
    "rc4_crypt",
    "rc4_keystream",
    "verify_text_ranking",
    "wps_checksum_digit",
    "wps_pin_attack",
]
