"""Tests for the PHY standards catalogue — including the source text's
rate tables (Fig 1.13 and the chapter 8 comparison table)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.units import mbps, usec
from repro.phy.standards import (
    DOT11A,
    DOT11AC,
    DOT11B,
    DOT11G,
    DOT11N,
    DOT11_LEGACY,
    STANDARDS,
    get_standard,
)


class TestTextRateTables:
    """The numbers the source text tabulates, verified as data."""

    def test_legacy_is_1_and_2_mbps_fhss(self):
        rates = [mode.data_rate_bps for mode in DOT11_LEGACY.modes]
        assert rates == [mbps(1), mbps(2)]

    def test_80211b_ladder(self):
        rates = [mode.data_rate_bps for mode in DOT11B.modes]
        assert rates == [mbps(1), mbps(2), mbps(5.5), mbps(11)]

    def test_80211a_and_g_share_the_ofdm_ladder(self):
        expected = [mbps(r) for r in (6, 9, 12, 18, 24, 36, 48, 54)]
        assert [m.data_rate_bps for m in DOT11A.modes] == expected
        assert [m.data_rate_bps for m in DOT11G.modes] == expected

    def test_bands_per_text(self):
        assert DOT11B.band_hz == pytest.approx(2.4e9)
        assert DOT11G.band_hz == pytest.approx(2.4e9)
        assert DOT11A.band_hz == pytest.approx(5.0e9)
        assert DOT11AC.band_hz == pytest.approx(5.0e9)

    def test_peak_rates_per_text(self):
        assert DOT11B.max_rate_bps == mbps(11)
        assert DOT11A.max_rate_bps == mbps(54)
        assert DOT11G.max_rate_bps == mbps(54)
        assert DOT11N.max_rate_bps == mbps(600)
        assert DOT11AC.max_rate_bps == pytest.approx(mbps(1300), rel=0.01)

    def test_nominal_ranges_per_text(self):
        assert DOT11B.nominal_range_m == 100.0
        assert DOT11N.nominal_range_m == 250.0
        assert DOT11AC.nominal_range_m == 250.0

    def test_mimo_streams(self):
        top_n = DOT11N.modes[-1]
        assert top_n.spatial_streams == 4
        top_ac = DOT11AC.modes[-1]
        assert top_ac.spatial_streams == 3


class TestTiming:
    def test_difs_is_sifs_plus_two_slots(self):
        for standard in STANDARDS.values():
            assert standard.difs == pytest.approx(
                standard.sifs + 2 * standard.slot_time)

    def test_80211b_timing_constants(self):
        assert DOT11B.slot_time == pytest.approx(usec(20))
        assert DOT11B.sifs == pytest.approx(usec(10))
        assert DOT11B.difs == pytest.approx(usec(50))

    def test_80211a_timing_constants(self):
        assert DOT11A.slot_time == pytest.approx(usec(9))
        assert DOT11A.sifs == pytest.approx(usec(16))
        assert DOT11A.difs == pytest.approx(usec(34))

    def test_eifs_exceeds_difs(self):
        for standard in STANDARDS.values():
            assert standard.eifs > standard.difs


class TestModeSelection:
    def test_mode_for_rate(self):
        assert DOT11B.mode_for_rate(mbps(11)).name == "CCK-11"
        with pytest.raises(ConfigurationError):
            DOT11B.mode_for_rate(mbps(54))

    def test_best_mode_for_snr_monotone(self):
        previous_rate = 0.0
        for snr in range(0, 40, 2):
            mode = DOT11A.best_mode_for_snr(float(snr))
            if mode is None:
                continue
            assert mode.data_rate_bps >= previous_rate
            previous_rate = mode.data_rate_bps

    def test_best_mode_below_all_thresholds_is_none(self):
        assert DOT11A.best_mode_for_snr(-10.0) is None

    def test_best_mode_at_high_snr_is_fastest(self):
        assert DOT11A.best_mode_for_snr(50.0).data_rate_bps == mbps(54)

    def test_sensitivity_increases_with_rate(self):
        sensitivities = [DOT11A.sensitivity_dbm(mode)
                         for mode in DOT11A.modes]
        assert sensitivities == sorted(sensitivities)


class TestAirtime:
    def test_airtime_includes_preamble(self):
        mode = DOT11B.mode_for_rate(mbps(11))
        airtime = DOT11B.frame_airtime(0, mode)
        assert airtime == pytest.approx(DOT11B.preamble_time)

    def test_airtime_scales_with_bits(self):
        mode = DOT11B.mode_for_rate(mbps(1))
        one = DOT11B.frame_airtime(8, mode)
        two = DOT11B.frame_airtime(16, mode)
        assert two - one == pytest.approx(8 / mbps(1))

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            DOT11B.frame_airtime(-1, DOT11B.modes[0])


class TestCatalogue:
    def test_lookup_by_name(self):
        assert get_standard("802.11b") is DOT11B

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_standard("802.11bogus")

    def test_noise_floor_ballpark(self):
        # 20 MHz, NF 7 dB -> about -94 dBm.
        assert DOT11A.noise_floor_dbm == pytest.approx(-94.0, abs=1.5)
