"""CRC-32 frame check sequence, implemented from scratch.

This is the IEEE 802.3/802.11 CRC-32 (polynomial 0x04C11DB7, reflected
form 0xEDB88320, initial value and final XOR of 0xFFFFFFFF).  It is
implemented here rather than via :mod:`zlib` because the security
subsystem needs to *reason* about the CRC — the WEP bit-flip attack
exploits CRC linearity, and the attack code manipulates the same
table-driven implementation the frames use.

The linearity property the attack relies on:

    crc32(a XOR b) == crc32(a) XOR crc32(b) XOR crc32(zeros(len))

for equal-length inputs.
"""

from __future__ import annotations

from typing import List

_POLY_REFLECTED = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY_REFLECTED
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, initial: int = 0) -> int:
    """CRC-32 of ``data``; ``initial`` chains partial computations."""
    crc = initial ^ 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def fcs_bytes(data: bytes) -> bytes:
    """The 4-byte FCS field for a frame body (little-endian on the wire)."""
    return crc32(data).to_bytes(4, "little")


def verify_fcs(data: bytes, fcs: bytes) -> bool:
    """Check a received frame's FCS."""
    if len(fcs) != 4:
        return False
    return fcs_bytes(data) == fcs
