"""Tests for the distribution system and extended service sets."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ConfigurationError
from repro.net.ap import AccessPoint
from repro.net.bss import ExtendedServiceSet, IndependentBss, generate_ibss_bssid
from repro.net.ds import DistributionSystem
from repro.net.station import Station
from repro.phy.channel import Medium
from repro.phy.propagation import LogDistance
from repro.phy.standards import DOT11G
from repro.scenarios import build_ess


def two_ap_ess(sim, spacing=40.0):
    scenario = build_ess(sim, ap_count=2, spacing_m=spacing)
    return scenario.medium, scenario.ess, scenario.aps


class TestDistributionSystem:
    def test_inter_bss_forwarding(self, sim):
        medium, ess, (ap0, ap1) = two_ap_ess(sim)
        sta0 = Station(sim, medium, DOT11G, Position(5, 0, 0), name="sta0")
        sta1 = Station(sim, medium, DOT11G, Position(35, 0, 0), name="sta1")
        # Pin each station to a specific AP via its tracker.
        sim.run(until=1.0)
        sta0._begin_authentication(sta0.tracker.get(ap0.bssid))
        sta0.target_ssid = "repro-ess"
        sta1.target_ssid = "repro-ess"
        sta1._begin_authentication(sta1.tracker.get(ap1.bssid))
        sim.run(until=3.0)
        assert sta0.serving_ap == ap0.bssid
        assert sta1.serving_ap == ap1.bssid
        inbox = []
        sta1.on_receive(lambda src, p, m: inbox.append((src, p)))
        sta0.send(sta1.address, b"across the DS")
        sim.run(until=5.0)
        assert inbox == [(sta0.address, b"across the DS")]
        assert ess.ds.counters.get("forwarded") == 1

    def test_portal_receives_unknown_destinations(self, sim):
        medium, ess, (ap0, _ap1) = two_ap_ess(sim)
        portal_inbox = []
        ess.ds.set_portal(lambda src, dst, p: portal_inbox.append(p))
        sta = Station(sim, medium, DOT11G, Position(5, 0, 0), name="sta")
        sim.run(until=1.0)
        sta.target_ssid = "repro-ess"
        sta._begin_authentication(sta.tracker.get(ap0.bssid))
        sim.run(until=3.0)
        from repro.mac.addresses import MacAddress
        internet_host = MacAddress.from_string("00:11:22:33:44:55")
        sta.send(internet_host, b"to the wired world")
        sim.run(until=4.0)
        assert portal_inbox == [b"to the wired world"]

    def test_portal_injection_reaches_station(self, sim):
        medium, ess, (ap0, _ap1) = two_ap_ess(sim)
        sta = Station(sim, medium, DOT11G, Position(5, 0, 0), name="sta")
        sim.run(until=1.0)
        sta.target_ssid = "repro-ess"
        sta._begin_authentication(sta.tracker.get(ap0.bssid))
        sim.run(until=3.0)
        inbox = []
        sta.on_receive(lambda src, p, m: inbox.append(p))
        from repro.mac.addresses import MacAddress
        server = MacAddress.from_string("00:11:22:33:44:55")
        ess.ds.inject_from_portal(server, sta.address, b"inbound")
        sim.run(until=4.0)
        assert inbox == [b"inbound"]

    def test_undeliverable_counted(self, sim):
        ds = DistributionSystem(sim)
        medium = Medium(sim, LogDistance(2.4e9))
        ap = AccessPoint(sim, medium, DOT11G, Position(0, 0, 0), ds=ds)
        from repro.mac.addresses import MacAddress
        ds.forward(ap, ap.address, MacAddress(0x999), b"nowhere")
        sim.run(until=0.1)
        assert ds.counters.get("undeliverable") == 1

    def test_location_table_tracks_roams(self, sim):
        medium, ess, (ap0, ap1) = two_ap_ess(sim)
        from repro.mac.addresses import MacAddress
        phantom = MacAddress(0x42)
        ess.ds.station_moved(phantom, ap0)
        assert ess.locate(phantom) is ap0
        ess.ds.station_moved(phantom, ap1)
        assert ess.locate(phantom) is ap1
        assert ess.ds.counters.get("roams") == 1
        ess.ds.station_left(phantom, ap1)
        assert ess.locate(phantom) is None


class TestEss:
    def test_mismatched_ssid_rejected(self, sim):
        medium = Medium(sim, LogDistance(2.4e9))
        ess = ExtendedServiceSet(sim, "the-ess")
        rogue = AccessPoint(sim, medium, DOT11G, Position(0, 0, 0),
                            ssid="other")
        with pytest.raises(ConfigurationError):
            ess.add_ap(rogue)

    def test_ap_cannot_join_two_dses(self, sim):
        medium = Medium(sim, LogDistance(2.4e9))
        first = ExtendedServiceSet(sim, "net")
        second = ExtendedServiceSet(sim, "net")
        ap = AccessPoint(sim, medium, DOT11G, Position(0, 0, 0), ssid="net")
        first.add_ap(ap)
        with pytest.raises(ConfigurationError):
            second.add_ap(ap)


class TestIbssBssid:
    def test_generated_bssid_is_local_unicast(self, sim):
        rng = sim.rng.stream("test-ibss")
        bssid = generate_ibss_bssid(rng)
        assert bssid.is_locally_administered
        assert not bssid.is_multicast

    def test_ibss_membership_rules(self, sim):
        medium = Medium(sim, LogDistance(2.4e9))
        ibss = IndependentBss.start(sim)
        infra_sta = Station(sim, medium, DOT11G, Position(0, 0, 0))
        with pytest.raises(ConfigurationError):
            ibss.join(infra_sta)
