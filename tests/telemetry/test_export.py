"""Exporters: JSONL byte conventions, the sim/wall stream split,
Prometheus text exposition, and the columnar summary."""

import json

from repro.telemetry.export import (TELEMETRY_FORMAT_VERSION, parse_jsonl,
                                    render_table, summary_table,
                                    to_jsonl, to_prometheus)
from repro.telemetry.metrics import MetricsRegistry, make_key
from repro.telemetry.spans import Span, SpanLog


def _populated_registry():
    registry = MetricsRegistry()
    registry.counter("mac", "frames", ap="a").inc(3)
    registry.gauge("kernel", "heap").set(17.5)
    hist = registry.histogram("medium", "fanout", bounds=(1.0, 5.0))
    hist.observe(0.5)
    hist.observe(4.0)
    registry.gauge("parallel", "busy", wall=True).set(0.25)
    registry.record_sample(make_key("kernel", "heap", {}), 0.1, 12.0)
    registry.record_sample(make_key("kernel", "heap", {}), 0.2, 13.0)
    registry.record_sample(make_key("parallel", "idle", {}), 0.2, 1.0,
                           wall=True)
    return registry


class TestJsonl:
    def test_record_order_and_float_repr(self):
        text = to_jsonl(_populated_registry())
        assert text.endswith("\n")
        records = parse_jsonl(text)
        assert [r["type"] for r in records] \
            == ["header", "metric", "metric", "metric", "sample", "sample"]
        header = records[0]
        assert header["stream"] == "sim"
        assert header["version"] == TELEMETRY_FORMAT_VERSION
        gauge = records[2]
        assert gauge["value"] == "17.5"  # repr string, not a float
        sample = records[4]
        assert sample["t"] == "0.1" and sample["v"] == "12.0"

    def test_lines_are_compact_and_key_sorted(self):
        for line in to_jsonl(_populated_registry()).splitlines():
            record = json.loads(line)
            assert line == json.dumps(record, sort_keys=True,
                                      separators=(",", ":"))

    def test_wall_stream_excludes_sim_metrics_and_spans(self):
        spans = SpanLog()
        spans.record(Span("frame", "s", 0.0, end=1.0, outcome="delivered"))
        text = to_jsonl(_populated_registry(), spans=spans, stream="wall")
        records = parse_jsonl(text)
        assert records[0]["stream"] == "wall"
        names = [(r.get("subsystem"), r.get("name")) for r in records[1:]]
        assert names == [("parallel", "busy"), ("parallel", "idle")]
        assert all(r["type"] != "span" for r in records)

    def test_histogram_record_carries_bounds_counts_sum(self):
        records = parse_jsonl(to_jsonl(_populated_registry()))
        (hist,) = [r for r in records if r.get("kind") == "histogram"]
        assert hist["bounds"] == ["1.0", "5.0"]
        assert hist["counts"] == [1, 1, 0]
        assert hist["total"] == 2
        assert hist["sum"] == "4.5"

    def test_span_records_in_sim_stream(self):
        spans = SpanLog()
        spans.record(Span("frame", "s", 0.25, end=1.5, outcome="delivered",
                          attrs={"attempts": 2, "first_tx": 0.5}))
        records = parse_jsonl(to_jsonl(_populated_registry(), spans=spans))
        (span,) = [r for r in records if r["type"] == "span"]
        assert span["start"] == "0.25" and span["end"] == "1.5"
        assert span["outcome"] == "delivered"
        assert span["attrs"] == {"attempts": 2, "first_tx": "0.5"}

    def test_two_exports_of_same_registry_are_byte_identical(self):
        registry = _populated_registry()
        assert to_jsonl(registry) == to_jsonl(registry)


class TestPrometheus:
    def test_exposition_shape(self):
        text = to_prometheus(_populated_registry())
        assert "# TYPE repro_mac_frames counter" in text
        assert 'repro_mac_frames{ap="a"} 3' in text
        assert "repro_kernel_heap 17.5" in text
        assert 'repro_medium_fanout_bucket{le="1.0"} 1' in text
        assert 'repro_medium_fanout_bucket{le="+Inf"} 2' in text
        assert "repro_medium_fanout_count 2" in text
        assert "repro_parallel_busy" not in text  # wall excluded by default

    def test_include_wall(self):
        text = to_prometheus(_populated_registry(), include_wall=True)
        assert "repro_parallel_busy 0.25" in text


class TestSummary:
    def test_table_rows_and_span_rollup(self):
        spans = SpanLog()
        spans.record(Span("frame", "a", 0.0, end=1.0, outcome="delivered"))
        spans.record(Span("frame", "b", 0.0, end=3.0, outcome="delivered"))
        spans.record(Span("frame", "c", 0.0, end=2.0, outcome="dropped"))
        summary = summary_table(_populated_registry(), spans)
        assert summary["columns"] == ["metric", "kind", "stream", "value"]
        by_name = {row[0]: row for row in summary["rows"]}
        assert by_name["mac/frames{ap=a}"][1:] == ["counter", "sim", 3]
        assert by_name["parallel/busy"][2] == "wall"
        assert by_name["medium/fanout"][3] == "n=2 mean=2.25"
        assert summary["span_rows"] == [["frame", "delivered", 2, 4.0],
                                        ["frame", "dropped", 1, 2.0]]

    def test_render_table_aligns(self):
        text = render_table(["a", "bee"], [["x", 1], ["long", 22]])
        lines = text.splitlines()
        assert lines[0] == "a     bee"
        assert lines[1] == "----  ---"
        assert lines[2] == "x     1"
        assert lines[3] == "long  22"
