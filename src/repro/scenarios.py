"""One-call scenario builders used by the examples and benchmarks.

Each builder wires a complete, ready-to-run topology — medium, devices,
association — so experiment code reads as *what* is measured rather
than *how* the network is assembled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .core.engine import Simulator
from .core.errors import SimulationError
from .core.topology import Position, circle_layout
from .mac.dcf import DcfConfig
from .mac.rate_adapt import RateControllerFactory
from .net.ap import AccessPoint
from .net.bss import ExtendedServiceSet, IndependentBss
from .net.ds import DistributionSystem
from .net.station import Station
from .phy.channel import Medium
from .phy.propagation import LogDistance, PropagationModel, RangePropagation
from .phy.standards import DOT11B, DOT11G, PhyStandard


@dataclass
class InfrastructureBss:
    """An AP plus associated stations, ready for traffic."""

    sim: Simulator
    medium: Medium
    ap: AccessPoint
    stations: List[Station]

    def run_until_associated(self, timeout: float = 10.0) -> None:
        associate_all(self.sim, self.stations, timeout=timeout)


def associate_all(sim: Simulator, stations: List[Station],
                  timeout: float = 10.0) -> None:
    """Run the simulation until every station has associated.

    Event-driven: association hooks stop the run the instant the last
    station associates, so no events are wasted on polling and the
    returned clock is the actual association time (the old
    implementation stepped the clock in 0.2 s increments, quantizing
    the association time and re-entering the scheduler dozens of times
    for slow joins).
    """
    waiting = [station for station in stations if not station.associated]
    if not waiting:
        return
    deadline = sim.now + timeout
    remaining = [len(waiting)]

    def _make_hook() -> Callable[[object], None]:
        fired = [False]

        def _hook(_bssid: object) -> None:
            # Count each station's *first* association only; a roam
            # during the wait re-fires the hook and must not
            # double-count toward `remaining`.
            if fired[0]:
                return
            fired[0] = True
            remaining[0] -= 1
            if remaining[0] == 0:
                sim.stop()
        return _hook

    # Each hook is unsubscribed after the run: a late association (after
    # a timeout) must never sim.stop() an unrelated later run, and
    # repeated associate_all calls must not accumulate closures.
    unsubscribes = [station.on_associated(_make_hook())
                    for station in waiting]
    try:
        sim.run(until=deadline)
    finally:
        for unsubscribe in unsubscribes:
            unsubscribe()
    missing = [station.name for station in stations
               if not station.associated]
    if missing:
        raise SimulationError(
            f"stations failed to associate within {timeout}s: {missing}")


def build_infrastructure_bss(sim: Simulator, station_count: int,
                             standard: PhyStandard = DOT11G,
                             radius_m: float = 20.0,
                             ssid: str = "repro-net",
                             path_loss_exponent: float = 3.0,
                             mac_config: Optional[DcfConfig] = None,
                             rate_factory: Optional[RateControllerFactory] = None,
                             associate: bool = True,
                             ) -> InfrastructureBss:
    """An AP at the origin with ``station_count`` stations on a circle."""
    medium = Medium(sim, LogDistance(standard.band_hz,
                                     exponent=path_loss_exponent))
    ap = AccessPoint(sim, medium, standard, Position(0, 0, 0),
                     name="ap", ssid=ssid, mac_config=mac_config,
                     rate_factory=rate_factory)
    ap.start_beaconing()
    stations = []
    for index, position in enumerate(circle_layout(station_count, radius_m)):
        station = Station(sim, medium, standard, position,
                          name=f"sta{index}", mac_config=mac_config,
                          rate_factory=rate_factory)
        station.associate(ssid)
        stations.append(station)
    scenario = InfrastructureBss(sim, medium, ap, stations)
    if associate and station_count > 0:
        scenario.run_until_associated()
    return scenario


@dataclass
class AdhocNetwork:
    """An IBSS of peer stations."""

    sim: Simulator
    medium: Medium
    ibss: IndependentBss
    stations: List[Station]


def build_adhoc_network(sim: Simulator, station_count: int,
                        standard: PhyStandard = DOT11B,
                        radius_m: float = 15.0,
                        path_loss_exponent: float = 3.0,
                        mac_config: Optional[DcfConfig] = None,
                        ) -> AdhocNetwork:
    """Peer stations on a circle sharing one IBSS."""
    medium = Medium(sim, LogDistance(standard.band_hz,
                                     exponent=path_loss_exponent))
    ibss = IndependentBss.start(sim)
    stations = []
    for index, position in enumerate(circle_layout(station_count, radius_m)):
        station = Station(sim, medium, standard, position,
                          name=f"peer{index}", adhoc=True,
                          ibss_bssid=ibss.bssid, mac_config=mac_config)
        ibss.join(station)
        stations.append(station)
    return AdhocNetwork(sim, medium, ibss, stations)


@dataclass
class HiddenTerminalScenario:
    """Two senders that cannot hear each other, one receiver that hears
    both — the canonical RTS/CTS motivation."""

    sim: Simulator
    medium: Medium
    receiver: Station
    sender_a: Station
    sender_b: Station

    @property
    def stations(self) -> List[Station]:
        return [self.receiver, self.sender_a, self.sender_b]


def build_hidden_terminal(sim: Simulator,
                          standard: PhyStandard = DOT11B,
                          carrier_range_m: float = 250.0,
                          mac_config: Optional[DcfConfig] = None,
                          rate_factory: Optional[RateControllerFactory] = None,
                          ) -> HiddenTerminalScenario:
    """Senders at ±0.8R around a middle receiver: each sender hears the
    receiver but not the other sender (disc propagation makes the hidden
    relationship exact)."""
    medium = Medium(sim, RangePropagation(carrier_range_m,
                                          in_range_loss_db=60.0))
    separation = 0.8 * carrier_range_m
    ibss = IndependentBss.start(sim)
    receiver = Station(sim, medium, standard, Position(0, 0, 0),
                       name="rx", adhoc=True, ibss_bssid=ibss.bssid,
                       mac_config=mac_config, rate_factory=rate_factory)
    sender_a = Station(sim, medium, standard, Position(-separation, 0, 0),
                       name="txA", adhoc=True, ibss_bssid=ibss.bssid,
                       mac_config=mac_config, rate_factory=rate_factory)
    sender_b = Station(sim, medium, standard, Position(separation, 0, 0),
                       name="txB", adhoc=True, ibss_bssid=ibss.bssid,
                       mac_config=mac_config, rate_factory=rate_factory)
    for station in (receiver, sender_a, sender_b):
        ibss.join(station)
    return HiddenTerminalScenario(sim, medium, receiver, sender_a, sender_b)


@dataclass
class EssScenario:
    """Several APs in a line sharing one SSID over a wired DS."""

    sim: Simulator
    medium: Medium
    ess: ExtendedServiceSet
    aps: List[AccessPoint]


def build_ess(sim: Simulator, ap_count: int, spacing_m: float = 60.0,
              standard: PhyStandard = DOT11G, ssid: str = "repro-ess",
              path_loss_exponent: float = 3.2) -> EssScenario:
    """A corridor of APs: AP k at x = k * spacing."""
    medium = Medium(sim, LogDistance(standard.band_hz,
                                     exponent=path_loss_exponent))
    ds = DistributionSystem(sim)
    ess = ExtendedServiceSet(sim, ssid, ds=ds)
    aps = []
    for index in range(ap_count):
        ap = AccessPoint(sim, medium, standard,
                         Position(index * spacing_m, 0, 0),
                         name=f"ap{index}", ssid=ssid, ds=ds)
        ess.add_ap(ap)
        # Stagger beacons so same-channel APs don't beacon in lockstep.
        ap.start_beaconing(offset=0.010 * (index + 1))
        aps.append(ap)
    return EssScenario(sim, medium, ess, aps)
