"""Float-drift regression tests for interference accounting.

After thousands of overlapping arrivals and departures, a radio's
residual interference figures must return *exactly* to the no-arrival
value — in exact mode because the arrival table empties (``sum([])``
is 0.0), and in fast mode because the incident-power accumulator
rebases to exactly 0.0 whenever the table empties (and re-sums every
256 departures in between).  Also guards the negative-residue clamp in
``_refresh_interference``.
"""

import itertools

import pytest

from repro.core import Position, Simulator
from repro.phy.channel import Medium, Transmission
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio, RadioConfig, RadioState


class _Carrier:
    """Minimal stand-in for a Transmission as an arrival-table key."""

    _ids = itertools.count()

    def __init__(self):
        self.id = next(self._ids)

    def __hash__(self):
        return self.id

    def __eq__(self, other):
        return self is other


def _deaf_radio(sim, exact=True, name="rx"):
    """A radio that never locks (infinite preamble threshold), so the
    arrival churn below is pure energy accounting."""
    medium = Medium(sim, FixedLoss(50.0), exact=exact)
    config = RadioConfig(preamble_detection_snr_db=float("inf"))
    return Radio(name, medium, DOT11B, Position(0, 0, 0), config=config)


CHURN_ROUNDS = 4000


def _churn(radio, begins, ends, overlap=7):
    """Thousands of overlapping begin/end edges with ragged powers."""
    live = []
    for round_index in range(CHURN_ROUNDS):
        carrier = _Carrier()
        # Ragged, non-representable powers: summing and un-summing these
        # in float accumulates residue unless the implementation rebases.
        power = 1e-9 * (1.0 + 0.1 * (round_index % 13)) / 3.0
        begins(carrier, power)
        live.append(carrier)
        if len(live) > overlap:
            ends(live.pop(0))
    for carrier in live:
        ends(carrier)


class TestExactModeDrift:
    def test_residual_returns_exactly_to_zero(self, sim):
        radio = _deaf_radio(sim, exact=True)
        _churn(radio, radio.arrival_begins, radio.arrival_ends)
        assert radio.total_incident_power_watts() == 0.0
        assert not radio._arrivals
        assert not radio.cca_busy()


class TestFastModeDrift:
    def test_accumulator_returns_exactly_to_zero(self, sim):
        radio = _deaf_radio(sim, exact=False)
        _churn(radio, radio.arrival_begins_fast, radio.arrival_ends_fast)
        assert radio._incident_watts == 0.0  # rebased, not residue
        assert not radio._arrivals
        assert not radio.cca_busy()

    def test_accumulator_is_rebased_mid_run(self, sim):
        """The running accumulator must be periodically re-anchored to
        the exact table sum, not just clamped at zero."""
        radio = _deaf_radio(sim, exact=False)
        live = []
        for index in range(2000):
            carrier = _Carrier()
            radio.arrival_begins_fast(carrier, 1e-9 / 3.0 * (1 + index % 5))
            live.append(carrier)
            if len(live) > 9:
                radio.arrival_ends_fast(live.pop(0))
        exact_sum = sum(radio._arrivals.values())
        drift = abs(radio._incident_watts - exact_sum)
        # Within a handful of ulps of the true sum thanks to the
        # 256-departure rebase (an unrebased accumulator drifts orders
        # of magnitude further over 2000 ragged edges).
        assert drift <= 1e-22


class TestClampPath:
    def test_locked_interference_residue_clamps_to_zero(self, sim):
        """Overlap churn around a locked reception must leave the
        tracker's interference at exactly the no-interferer value."""
        medium = Medium(sim, FixedLoss(50.0))
        tx = Radio("tx", medium, DOT11B, Position(0, 0, 0))
        rx = Radio("rx", medium, DOT11B, Position(5, 0, 0))
        tx.transmit(b"frame", 80000, DOT11B.modes[0])
        sim.run(until=0.0001)  # the arrival locked the receiver
        assert rx.state is RadioState.RX
        live = []
        for index in range(1500):
            carrier = _Carrier()
            rx.arrival_begins(carrier, 2e-10 * (1 + index % 11) / 7.0)
            live.append(carrier)
            if len(live) > 5:
                rx.arrival_ends(live.pop(0))
        for carrier in live:
            rx.arrival_ends(carrier)
        # Only the locked signal remains: the interference fast path
        # must report exactly 0.0 (sum([locked]) - locked), and the
        # clamp must have absorbed any negative residue along the way.
        rx._refresh_interference()
        assert rx._locked_tracker._current_interference == 0.0
