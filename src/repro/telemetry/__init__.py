"""Unified observability: sim-time metrics, spans, probes, exporters.

Quick start::

    telemetry = Telemetry(sim, enabled=True)
    telemetry.instrument_kernel().instrument_medium(medium)
    telemetry.instrument_macs(macs).instrument_radios(radios)
    telemetry.install()
    sim.run(until=horizon)
    telemetry.finish()
    print(telemetry.sim_jsonl())      # byte-identical run-to-run

``Telemetry(sim, enabled=False)`` is the null hub: every probe
short-circuits and the simulation runs the uninstrumented path
byte-identically — the zero-overhead contract inherited from
:class:`~repro.core.trace.TraceLog`.

Sim-time metrics (the default) are part of the determinism contract;
wall-clock metrics (``wall=True``) live in a separate stream that
``tools/capture_golden.py`` and the perf regression gate never compare.
"""

from .export import (parse_jsonl, render_table, summary_table, to_jsonl,
                     to_prometheus)
from .metrics import (CounterMetric, GaugeMetric, HistogramMetric,
                      MetricsRegistry, NULL_METRIC, PeriodicSampler,
                      format_key, make_key)
from .probes import (KernelDispatchProbe, MacFleetProbe, MediumProbe,
                     RadioFleetProbe, Telemetry, record_fault_spans)
from .spans import FrameSpanTracker, Span, SpanLog

__all__ = [
    "CounterMetric", "FrameSpanTracker", "GaugeMetric", "HistogramMetric",
    "KernelDispatchProbe", "MacFleetProbe", "MediumProbe", "MetricsRegistry",
    "NULL_METRIC", "PeriodicSampler", "RadioFleetProbe", "Span", "SpanLog",
    "Telemetry", "format_key", "make_key", "parse_jsonl", "record_fault_spans",
    "render_table", "summary_table", "to_jsonl", "to_prometheus",
]
