"""Tests for CCMP (AES-CCM)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import IntegrityError, ReplayError, SecurityError
from repro.security.ccmp import (
    CCMP_OVERHEAD,
    CcmpCipher,
    ccm_decrypt,
    ccm_encrypt,
)

TK = bytes(range(16))
TA = b"\x02\x00\x00\x00\x00\x01"
NONCE = bytes(13)


def pair():
    return CcmpCipher(TK, TA), CcmpCipher(TK, TA)


class TestCcmMode:
    @given(st.binary(max_size=200), st.binary(max_size=64))
    @settings(max_examples=30)
    def test_round_trip_with_aad(self, plaintext, aad):
        sealed = ccm_encrypt(TK, NONCE, aad, plaintext)
        assert ccm_decrypt(TK, NONCE, aad, sealed) == plaintext

    def test_ciphertext_length(self):
        sealed = ccm_encrypt(TK, NONCE, b"", b"x" * 37)
        assert len(sealed) == 37 + 8  # payload + MIC

    def test_aad_is_authenticated(self):
        sealed = ccm_encrypt(TK, NONCE, b"header", b"payload")
        with pytest.raises(IntegrityError):
            ccm_decrypt(TK, NONCE, b"HEADER", sealed)

    def test_ciphertext_tamper_detected(self):
        sealed = bytearray(ccm_encrypt(TK, NONCE, b"", b"payload"))
        sealed[0] ^= 0x01
        with pytest.raises(IntegrityError):
            ccm_decrypt(TK, NONCE, b"", bytes(sealed))

    def test_mic_tamper_detected(self):
        sealed = bytearray(ccm_encrypt(TK, NONCE, b"", b"payload"))
        sealed[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            ccm_decrypt(TK, NONCE, b"", bytes(sealed))

    def test_nonce_binds_ciphertext(self):
        other_nonce = bytes(12) + b"\x01"
        sealed = ccm_encrypt(TK, NONCE, b"", b"payload")
        with pytest.raises(IntegrityError):
            ccm_decrypt(TK, other_nonce, b"", sealed)

    def test_bad_nonce_length_rejected(self):
        with pytest.raises(SecurityError):
            ccm_encrypt(TK, bytes(11), b"", b"x")

    def test_empty_plaintext(self):
        sealed = ccm_encrypt(TK, NONCE, b"aad", b"")
        assert ccm_decrypt(TK, NONCE, b"aad", sealed) == b""


class TestCcmpCipher:
    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=20)
    def test_round_trip(self, plaintext):
        tx, rx = pair()
        assert rx.decrypt(tx.encrypt(plaintext)) == plaintext

    def test_overhead(self):
        tx, _ = pair()
        assert len(tx.encrypt(b"x" * 64)) == 64 + CCMP_OVERHEAD

    def test_pn_increments(self):
        tx, _ = pair()
        tx.encrypt(b"one")
        tx.encrypt(b"two")
        assert tx.pn == 2

    def test_replay_rejected(self):
        tx, rx = pair()
        frame = tx.encrypt(b"data")
        rx.decrypt(frame)
        with pytest.raises(ReplayError):
            rx.decrypt(frame)

    def test_out_of_order_rejected(self):
        tx, rx = pair()
        first = tx.encrypt(b"one")
        second = tx.encrypt(b"two")
        rx.decrypt(second)
        with pytest.raises(ReplayError):
            rx.decrypt(first)

    def test_aad_round_trip(self):
        tx, rx = pair()
        sealed = tx.encrypt(b"payload", aad=b"frame header")
        assert rx.decrypt(sealed, aad=b"frame header") == b"payload"

    def test_aad_mismatch_detected(self):
        tx, rx = pair()
        sealed = tx.encrypt(b"payload", aad=b"frame header")
        with pytest.raises(IntegrityError):
            rx.decrypt(sealed, aad=b"forged header")

    def test_transmitter_address_binds(self):
        tx = CcmpCipher(TK, TA)
        rx = CcmpCipher(TK, b"\x02\x00\x00\x00\x00\x02")
        with pytest.raises(IntegrityError):
            rx.decrypt(tx.encrypt(b"data"))

    def test_key_length_enforced(self):
        with pytest.raises(SecurityError):
            CcmpCipher(b"short", TA)
