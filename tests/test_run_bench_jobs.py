"""The perf harness's --jobs process-pool fan-out.

The contract: ``--jobs N`` may overlap macro runs across N forked
children, but the emitted rows (and therefore the BENCH files, the
console table, and the --check verdicts) appear in exactly the same
order as the serial path — parallelism must never reorder output.
"""

import pathlib
import sys
import time

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import run_bench  # noqa: E402
from perf import macro  # noqa: E402


def _fast_macro(scale=1.0, **kwargs):
    return {"work": 10, "work_unit": "events", "stats": {"x": 1}}


def _slow_macro(scale=1.0, **kwargs):
    time.sleep(0.3)
    return {"work": 10, "work_unit": "events", "stats": {"x": 2}}


def _sleepy_macro(scale=1.0, **kwargs):
    time.sleep(0.6)
    return {"work": 10, "work_unit": "events", "stats": {"x": 3}}


def _hanging_macro(scale=1.0, **kwargs):
    time.sleep(60)
    return _fast_macro(scale)


def _crashing_macro(scale=1.0, **kwargs):
    raise RuntimeError("synthetic macro failure")


@pytest.fixture
def stub_macros(monkeypatch):
    monkeypatch.setitem(macro.MACROS, "stub_slow", _slow_macro)
    monkeypatch.setitem(macro.MACROS, "stub_sleepy", _sleepy_macro)
    monkeypatch.setitem(macro.MACROS, "stub_fast", _fast_macro)
    monkeypatch.setitem(macro.MACROS, "stub_hang", _hanging_macro)
    monkeypatch.setitem(macro.MACROS, "stub_crash", _crashing_macro)


def collect(names, jobs, timeout=30.0):
    return list(run_bench.iter_results(names, 1.0, 1, timeout=timeout,
                                       jobs=jobs))


class TestJobsOrdering:
    def test_rows_follow_input_order_not_completion_order(
            self, stub_macros):
        # The slow macro is listed first; with two children the fast
        # one finishes well before it, yet must be emitted second.
        rows = collect(["stub_slow", "stub_fast"], jobs=2)
        assert [name for name, _, _ in rows] == ["stub_slow", "stub_fast"]
        assert all(status == "ok" for _, status, _ in rows)

    def test_parallel_rows_match_serial_rows(self, stub_macros):
        names = ["stub_fast", "stub_slow", "stub_fast"]
        serial = collect(names, jobs=1)
        parallel = collect(names, jobs=3)
        assert [(n, s, r["stats"]) for n, s, r in serial] \
            == [(n, s, r["stats"]) for n, s, r in parallel]

    def test_duplicate_names_each_get_their_own_row(self, stub_macros):
        # Regression: results are buffered by input index, not name.
        # Three identical fast macros finish inside one wait() batch;
        # name-keyed buffering collapsed them to one row and the pool
        # then spun forever waiting for rows that could never arrive.
        rows = collect(["stub_fast", "stub_fast", "stub_fast"], jobs=3)
        assert [(n, s) for n, s, _ in rows] == [("stub_fast", "ok")] * 3

    def test_pool_actually_overlaps_children(self, stub_macros):
        start = time.monotonic()
        rows = collect(["stub_sleepy", "stub_sleepy", "stub_sleepy"],
                       jobs=3)
        elapsed = time.monotonic() - start
        assert all(status == "ok" for _, status, _ in rows)
        # Three 0.6 s macros serially sleep >= 1.8 s; overlapped they
        # fit well under that even on one core (they sleep, not spin).
        # The slack below the serial floor absorbs fork/scheduling
        # overhead on loaded single-core CI boxes.
        assert elapsed < 1.5


class TestJobsFailureRows:
    def test_timeout_kills_only_the_hung_child(self, stub_macros):
        rows = collect(["stub_hang", "stub_fast"], jobs=2, timeout=0.5)
        assert [(n, s) for n, s, _ in rows] \
            == [("stub_hang", "timeout"), ("stub_fast", "ok")]

    def test_crash_reports_error_row(self, stub_macros):
        rows = collect(["stub_crash", "stub_fast"], jobs=2)
        (name, status, message), ok_row = rows
        assert (name, status) == ("stub_crash", "error")
        assert "synthetic macro failure" in message
        assert ok_row[1] == "ok"

    def test_run_full_parallel_writes_only_ok_benchfiles(
            self, stub_macros, tmp_path, capsys):
        code = run_bench.run_full(["stub_fast", "stub_hang"], 1.0, 1,
                                  tmp_path, timeout=0.5, jobs=2)
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out
        assert (tmp_path / "BENCH_stub_fast.json").exists()
        assert not (tmp_path / "BENCH_stub_hang.json").exists()


class TestJobsValidation:
    def test_jobs_zero_is_an_argument_error(self):
        with pytest.raises(SystemExit) as excinfo:
            run_bench.main(["--only", "dcf_saturation", "--jobs", "0"])
        assert excinfo.value.code == 2
