"""The campaign executor: expand, fan out, persist, resume.

Orchestrates one campaign end-to-end:

1. expand the validated spec into the ordered job grid,
2. open (or resume) the content-addressed manifest,
3. fan pending jobs across forked workers (``jobs``/``timeout`` ride
   the same :mod:`repro.campaign.pool` machinery as
   ``run_bench --jobs``),
4. record every completion atomically in the manifest the instant it
   arrives (crash-safe: a kill between two jobs loses at most the
   in-flight ones),
5. stream result rows into the columnar store **in grid order**, done
   rows from previous runs included, so an interrupted-and-resumed
   campaign produces a store byte-identical to an uninterrupted one.

Failed and timed-out jobs produce failure rows (and a nonzero summary)
but never poison the rest of the grid; a resume retries them.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .grid import Job, expand_grid, grid_sha1
from .manifest import Manifest
from .pool import iter_pooled, select_names
from .runner import run_job
from .store import StoreWriter

__all__ = ["run_campaign", "CampaignResult"]

#: Test hook for the crash-safety suite: when set to N, the executor
#: calls ``os._exit`` (no cleanup, no atexit — an honest SIGKILL stand-
#: in) immediately after the Nth manifest record of the run.  Documented
#: here because the resume byte-identity gate in CI depends on it.
CRASH_AFTER_ENV = "REPRO_CAMPAIGN_CRASH_AFTER"


@dataclass
class CampaignResult:
    """What one executor invocation did."""

    name: str
    jobs: List[Job]
    rows: List[Dict[str, Any]]
    manifest_path: pathlib.Path
    store_path: pathlib.Path
    csv_path: pathlib.Path
    #: Jobs executed in this invocation (not reused from the manifest).
    ran: int = 0
    #: Jobs whose done rows were reused from a previous run.
    reused: int = 0
    failed: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed


def _row(name: str, job: Job, status: str,
         stats: Optional[Dict[str, Any]] = None,
         error: Optional[str] = None) -> Dict[str, Any]:
    row: Dict[str, Any] = {
        "campaign": name,
        "index": job.index,
        "key": job.key,
        "label": job.label,
        "axes": dict(sorted(job.axes.items())),
        "seed": job.seed,
        "status": status,
    }
    if stats is not None:
        row["stats"] = stats
    if error is not None:
        row["error"] = error
    return row


def run_campaign(spec: Dict[str, Any], out_dir: pathlib.Path, *,
                 jobs: int = 1, timeout: float = 0.0, fresh: bool = False,
                 only: Optional[Sequence[str]] = None,
                 max_jobs: Optional[int] = None,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> CampaignResult:
    """Run (or resume) one campaign; return its result summary.

    ``only`` filters job *labels* with the shared ``--only`` glob
    contract (e.g. ``'seed=11'`` or ``'*rts*=256*'``); filtered-out
    jobs are skipped this invocation but stay pending in the manifest.
    ``max_jobs`` caps how many pending jobs this invocation executes —
    the budgeted/incremental mode (the rest stays pending for the next
    resume).  Neither knob changes row identity, so partial
    invocations compose: once every job is done, the store is the same
    bytes no matter how the work was sliced.
    """
    say = progress if progress is not None else (lambda message: None)
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    name = spec["campaign"]["name"]
    grid = expand_grid(spec)
    fingerprint = grid_sha1(grid)
    manifest = Manifest.open(out_dir / f"{name}.manifest.json", name,
                             fingerprint, fresh=fresh)

    pending = [job for job in grid if not manifest.is_done(job.key)]
    if only:
        labels = select_names(only, [job.label for job in pending],
                              what="job label")
        wanted = set(labels)
        pending = [job for job in pending if job.label in wanted]
    if max_jobs is not None:
        pending = pending[:max_jobs]

    def _task(_spec):
        # One job as a self-reporting task: a job that raises becomes a
        # failure *row*, never an exception that poisons the rest of
        # the grid (the pool's in-process mode would otherwise let it
        # propagate, which is right for run_bench but not here).
        def run():
            try:
                return "ok", run_job(_spec)
            except Exception as exc:
                return "error", f"{type(exc).__name__}: {exc}"
        return run

    crash_after = int(os.environ.get(CRASH_AFTER_ENV, 0) or 0)
    recorded = 0
    outcomes: Dict[str, Any] = {}
    tasks = [_task(job.spec) for job in pending]
    for index, status, payload in iter_pooled(tasks, timeout=timeout,
                                              jobs=jobs):
        job = pending[index]
        if status == "ok":
            # Unwrap the task's own (status, payload) report.
            status, payload = payload
        if status == "ok":
            manifest.record_done(job.key, payload)
            say(f"{job.label:40s} ok")
        else:
            reason = (f"timed out after {timeout:g}s"
                      if status == "timeout" else payload)
            manifest.record_failed(job.key, reason)
            say(f"{job.label:40s} FAILED: {reason}")
        outcomes[job.key] = status
        recorded += 1
        if crash_after and recorded >= crash_after:
            # Crash-safety test hook: die the hard way, mid-grid, with
            # no flushing beyond what the manifest already guaranteed.
            os._exit(23)

    # Project the manifest into the store, in grid order.  Every job
    # gets a row: done rows carry stats, still-pending ones (filtered
    # out or beyond --max-jobs) an explicit "pending" status so the
    # CSV's shape never depends on how far the campaign has got.
    writer = StoreWriter(out_dir / f"{name}.results.jsonl",
                         out_dir / f"{name}.results.csv")
    result = CampaignResult(name=name, jobs=grid, rows=[],
                            manifest_path=manifest.path,
                            store_path=writer.jsonl_path,
                            csv_path=writer.csv_path,
                            ran=len(outcomes))
    try:
        for job in grid:
            stats = manifest.row(job.key)
            if stats is not None:
                writer.add(job.index, _row(name, job, "done", stats=stats))
                if job.key not in outcomes:
                    result.reused += 1
            elif manifest.status(job.key) == "failed":
                writer.add(job.index, _row(
                    name, job, "failed",
                    error=manifest.jobs[job.key]["error"]))
                result.failed.append(job.label)
            else:
                writer.add(job.index, _row(name, job, "pending"))
    except BaseException:
        writer.abort()
        raise
    result.rows = writer.close()
    return result
