"""Frame error models: from SNR to packet delivery.

The link abstraction used across the simulator is:

    SINR --(modulation BER curve)--> bit error rate
         --(independent-bit assumption)--> packet error rate
         --(RNG draw)--> delivered / corrupted

The independent-bit PER is pessimistic versus real interleaved/coded
links but preserves the monotone SNR-vs-distance behaviour every
experiment here depends on.  A deterministic threshold model is also
provided for tests and topology experiments.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .modulation import Modulation


class ErrorModel:
    """Abstract base: decide whether a frame survives the channel."""

    def packet_error_rate(self, snr_db: float, size_bits: int,
                          modulation: Modulation) -> float:
        raise NotImplementedError

    def frame_survives(self, snr_db: float, size_bits: int,
                       modulation: Modulation, rng: random.Random) -> bool:
        """Sample delivery success for one frame."""
        per = self.packet_error_rate(snr_db, size_bits, modulation)
        return rng.random() >= per


@dataclass
class BerErrorModel(ErrorModel):
    """PER from the modulation's BER curve, assuming independent bits.

    ``per = 1 - (1 - ber)^bits``, computed in log space with
    ``log1p``/``expm1`` so tiny BERs don't underflow to "perfect link".
    """

    def packet_error_rate(self, snr_db: float, size_bits: int,
                          modulation: Modulation) -> float:
        if size_bits <= 0:
            return 0.0
        ber = modulation.ber(snr_db)
        if ber <= 0.0:
            return 0.0
        if ber >= 1.0:
            return 1.0
        log_success = size_bits * math.log1p(-ber)
        return -math.expm1(log_success)

    def frame_survives(self, snr_db: float, size_bits: int,
                       modulation: Modulation, rng: random.Random) -> bool:
        """Sample delivery success (this runs once per decoded frame per
        receiver).  The PER is a pure function of the exact
        ``(snr_db, size_bits, modulation)`` floats, and stationary
        topologies hit the same handful of SINR values over and over,
        so it is memoized — the cached value is the output of the very
        same computation, so results are bit-identical to the uncached
        path.  The RNG is always drawn exactly once, like the base
        implementation, to keep seeded streams aligned."""
        key = (snr_db, size_bits, modulation)
        try:
            # The PER lookup must complete before the RNG draw: putting
            # the draw on the left of the comparison would evaluate it
            # before a cache miss raises, double-drawing on misses and
            # desynchronizing the seeded stream.
            per = _per_cache[key]
        except KeyError:
            per = 0.0
            if size_bits > 0:
                ber = modulation.ber(snr_db)
                if ber >= 1.0:
                    per = 1.0
                elif ber > 0.0:
                    per = -math.expm1(size_bits * math.log1p(-ber))
            if len(_per_cache) >= _PER_CACHE_LIMIT:
                _per_cache.clear()
            _per_cache[key] = per
        return rng.random() >= per


#: Memoized packet error rates keyed by the exact (snr, bits, modulation)
#: inputs (Modulation is a frozen, hashable dataclass, so distinct
#: parameter sets never share an entry even if their names collide);
#: pure-function cache, see BerErrorModel.frame_survives.
_per_cache: dict = {}
_PER_CACHE_LIMIT = 1 << 16


@dataclass
class SnrThresholdErrorModel(ErrorModel):
    """Deterministic cliff: perfect above ``threshold_db``, lost below.

    The threshold can be offset relative to the per-modulation minimum
    SNR carried by the PHY standard; here it is an absolute dB value.
    """

    threshold_db: float

    def packet_error_rate(self, snr_db: float, size_bits: int,
                          modulation: Modulation) -> float:
        return 0.0 if snr_db >= self.threshold_db else 1.0


@dataclass
class FixedPerErrorModel(ErrorModel):
    """A constant packet error rate regardless of SNR.

    Used to inject controlled loss in MAC tests (retry/fragmentation
    behaviour under a known PER).
    """

    per: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.per <= 1.0:
            raise ValueError(f"per must be in [0, 1], got {self.per}")

    def packet_error_rate(self, snr_db: float, size_bits: int,
                          modulation: Modulation) -> float:
        return self.per
