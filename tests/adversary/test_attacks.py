"""MAC-layer attack nodes: injection, deauth floods, evil twins, NAV abuse."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ConfigurationError
from repro.mac.frames import make_cts
from repro.adversary.attacks import (
    CtsNavAttacker,
    DeauthFlooder,
    FrameInjector,
    MAX_DURATION_US,
    RogueAp,
)
from repro.net.ap import AccessPoint
from repro.net.roaming import RoamingPolicy
from repro.net.station import Station
from repro.phy.channel import Medium
from repro.phy.propagation import LogDistance
from repro.phy.standards import DOT11G
from repro.scenarios import associate_all
from repro.traffic.generators import CbrSource
from repro.traffic.sink import TrafficSink


def build_bss(sim, station_count=2, **station_kwargs):
    medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
    ap = AccessPoint(sim, medium, DOT11G, Position(0, 0, 0), name="ap",
                     ssid="testnet")
    ap.start_beaconing()
    stations = []
    for index in range(station_count):
        station = Station(sim, medium, DOT11G,
                          Position(10.0 + index, 0, 0), name=f"sta{index}",
                          **station_kwargs)
        station.associate("testnet")
        stations.append(station)
    associate_all(sim, stations)
    return medium, ap, stations


class TestFrameInjector:
    def test_injects_spoofed_frames_on_the_air(self, sim):
        medium, ap, stations = build_bss(sim)
        injector = FrameInjector(sim, medium, DOT11G, Position(5, 0, 0))
        injector.inject(make_cts(stations[0].address, 0))
        sim.run(until=sim.now + 0.5)
        assert injector.counters.get("injected") == 1
        assert injector.pending == 0

    def test_queue_is_bounded_drop_tail(self, sim):
        medium, _ap, stations = build_bss(sim)
        injector = FrameInjector(sim, medium, DOT11G, Position(5, 0, 0),
                                 queue_limit=3)
        accepted = [injector.inject(make_cts(stations[0].address, 0))
                    for _ in range(6)]
        # One on the air immediately, three queued, the rest dropped.
        assert accepted == [True, True, True, True, False, False]
        assert injector.counters.get("queue_drops") == 2
        sim.run(until=sim.now + 0.5)
        assert injector.counters.get("injected") == 4

    def test_queue_drains_in_order_across_tx(self, sim):
        medium, _ap, stations = build_bss(sim)
        injector = FrameInjector(sim, medium, DOT11G, Position(5, 0, 0))
        for _ in range(5):
            injector.inject(make_cts(stations[0].address, 0))
        assert injector.pending >= 4  # half duplex: one on the air max
        sim.run(until=sim.now + 0.5)
        assert injector.counters.get("injected") == 5
        assert injector.pending == 0


class TestDeauthFlooder:
    def test_broadcast_flood_kicks_every_station(self, sim):
        medium, ap, stations = build_bss(sim, station_count=3)
        injector = FrameInjector(sim, medium, DOT11G, Position(5, 0, 0))
        flood = DeauthFlooder(sim, injector, ap.bssid, interval=40e-3)
        flood.start()
        sim.run(until=sim.now + 1.5)
        flood.stop()
        assert flood.counters.get("deauths_spoofed") > 10
        for station in stations:
            # Kicked (at least once) and fought its way back.
            assert station.sta_counters.get("link_lost_ap_kicked_us") >= 1
            assert station.sta_counters.get("associations") >= 2

    def test_ap_side_flood_churns_the_association_table(self, sim):
        medium, ap, stations = build_bss(sim, station_count=2)
        injector = FrameInjector(sim, medium, DOT11G, Position(5, 0, 0))
        flood = DeauthFlooder(sim, injector, ap.bssid,
                              targets=[s.address for s in stations],
                              interval=50e-3, toward="ap")
        flood.start()
        sim.run(until=sim.now + 1.0)
        assert ap.ap_counters.get("removed_deauthentication") >= 2

    def test_toward_validation(self, sim):
        medium, ap, _ = build_bss(sim, station_count=0)
        injector = FrameInjector(sim, medium, DOT11G, Position(5, 0, 0))
        with pytest.raises(ConfigurationError):
            DeauthFlooder(sim, injector, ap.bssid, toward="sideways")

    @pytest.mark.parametrize("toward", ["ap", "both"])
    def test_ap_directions_require_targets(self, sim, toward):
        # Regression: without station addresses to spoof, an AP-ward
        # flood would tick forever injecting nothing.
        medium, ap, _ = build_bss(sim, station_count=0)
        injector = FrameInjector(sim, medium, DOT11G, Position(5, 0, 0))
        with pytest.raises(ConfigurationError):
            DeauthFlooder(sim, injector, ap.bssid, toward=toward)


class TestRogueAp:
    def test_twin_lures_a_roaming_station(self, sim):
        medium, ap, stations = build_bss(
            sim, station_count=1,
            roaming_policy=RoamingPolicy(low_snr_threshold_db=100.0,
                                         hysteresis_db=3.0, min_dwell=0.1))
        station = stations[0]
        # The rogue parks right next to the victim station and clones
        # the SSID with a hotter radio.
        rogue = RogueAp.twin_of(ap, Position(11.0, 1.0, 0),
                                power_advantage_db=20.0)
        rogue.start_beaconing(offset=0.05)
        sim.run(until=sim.now + 5.0)
        assert station.serving_ap == rogue.bssid
        assert station.address in rogue.lured
        assert rogue.ap_counters.get("stations_lured") == 1
        assert rogue.ssid == ap.ssid

    def test_twin_clones_channel_and_ssid(self, sim):
        medium, ap, _ = build_bss(sim, station_count=0)
        rogue = RogueAp.twin_of(ap, Position(1, 1, 0))
        assert rogue.radio.channel_id == ap.radio.channel_id
        assert rogue.ssid == ap.ssid
        assert rogue.radio.tx_power_watts > ap.radio.tx_power_watts


class TestCtsNavAttacker:
    def test_nav_abuse_starves_honest_traffic(self, sim):
        medium, ap, stations = build_bss(sim)
        sink = TrafficSink(sim)
        ap.on_receive(lambda source, payload, meta: sink.consume(payload))
        source = CbrSource(
            sim,
            lambda p: stations[0].associated
            and stations[0].send(ap.address, p),
            packet_bytes=200, interval=5e-3)
        sim.run(until=sim.now + 1.0)
        baseline = sink.total_received
        assert baseline > 100
        injector = FrameInjector(sim, medium, DOT11G, Position(5, 0, 0))
        attacker = CtsNavAttacker(sim, injector)
        attacker.start()
        sim.run(until=sim.now + 1.0)
        under_attack = sink.total_received - baseline
        # The NAV reservation train freezes the cell: delivery collapses
        # to a tiny fraction without a single jammed bit.
        assert under_attack < baseline * 0.2
        assert attacker.counters.get("cts_sent") > 10
        # Honest stations deferred on the *virtual* carrier sense.
        assert stations[0].mac.counters.get("nav_updates") > 0

    def test_duration_validation(self, sim):
        medium, _ap, _ = build_bss(sim, station_count=0)
        injector = FrameInjector(sim, medium, DOT11G, Position(5, 0, 0))
        with pytest.raises(ConfigurationError):
            CtsNavAttacker(sim, injector, duration_us=MAX_DURATION_US + 1)
