"""Tests for the cellular substrate."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ConfigurationError, ProtocolError
from repro.core.units import gbps, kbps, mbps
from repro.wwan.cellular import (
    CellularNetwork,
    GENERATIONS,
    MobileDevice,
)


class TestGenerations:
    """The §2.4 generation ladder as data."""

    def test_rates_match_the_text(self):
        assert GENERATIONS["1G"].peak_rate_bps == kbps(2.4)
        assert GENERATIONS["2G"].peak_rate_bps == kbps(64)
        assert GENERATIONS["2.5G"].peak_rate_bps == kbps(144)
        assert GENERATIONS["3G"].peak_rate_bps == mbps(2)
        assert GENERATIONS["3.5G"].peak_rate_bps == mbps(14)
        assert GENERATIONS["4G"].peak_rate_bps == gbps(1)

    def test_each_generation_faster_than_the_last(self):
        ordered = ["1G", "2G", "2.5G", "3G", "3.5G", "4G"]
        rates = [GENERATIONS[name].peak_rate_bps for name in ordered]
        assert rates == sorted(rates)

    def test_unknown_generation_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            CellularNetwork(sim, "6G")


class TestFrequencyReuse:
    def test_cell_count_matches_rings(self, sim):
        network = CellularNetwork(sim, "3G", rings=2)
        assert len(network.cells) == 19

    def test_reuse_multiplies_capacity(self, sim):
        """Smaller reuse factor -> more channels per cell -> more
        simultaneous sessions across the deployment."""
        aggressive = CellularNetwork(sim, "3G", rings=1, total_channels=70,
                                     reuse_factor=1)
        conservative = CellularNetwork(sim, "3G", rings=1, total_channels=70,
                                       reuse_factor=7)
        assert aggressive.total_capacity_sessions() == \
            7 * conservative.total_capacity_sessions()

    def test_invalid_reuse_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            CellularNetwork(sim, "3G", reuse_factor=5)

    def test_adjacent_cells_use_different_groups(self, sim):
        network = CellularNetwork(sim, "3G", rings=1, reuse_factor=7)
        groups = [cell.channel_group for cell in network.cells]
        assert len(set(groups)) == 7


class TestSessions:
    def test_session_lifecycle(self, sim):
        network = CellularNetwork(sim, "4G", rings=1)
        mobile = MobileDevice(sim, network, "phone", Position(0, 0, 0))
        assert mobile.start_session()
        assert mobile.in_session
        assert mobile.current_rate_bps() == gbps(1)
        mobile.end_session()
        assert not mobile.in_session
        assert mobile.current_rate_bps() == 0.0

    def test_double_session_rejected(self, sim):
        network = CellularNetwork(sim, "4G", rings=1)
        mobile = MobileDevice(sim, network, "phone", Position(0, 0, 0))
        mobile.start_session()
        with pytest.raises(ProtocolError):
            mobile.start_session()

    def test_blocking_when_cell_full(self, sim):
        network = CellularNetwork(sim, "3G", rings=0, total_channels=3,
                                  reuse_factor=3)  # 1 channel, 1 cell
        first = MobileDevice(sim, network, "m1", Position(0, 0, 0))
        second = MobileDevice(sim, network, "m2", Position(1, 0, 0))
        assert first.start_session()
        assert not second.start_session()
        assert second.counters.get("blocked") == 1

    def test_rate_shared_among_cell_users(self, sim):
        network = CellularNetwork(sim, "3G", rings=0, total_channels=12,
                                  reuse_factor=3)
        mobiles = [MobileDevice(sim, network, f"m{i}", Position(0, 0, 0))
                   for i in range(4)]
        for mobile in mobiles:
            assert mobile.start_session()
        assert mobiles[0].current_rate_bps() == \
            pytest.approx(mbps(2) / 4)


class TestHandoff:
    def test_moving_mobile_hands_off(self, sim):
        network = CellularNetwork(sim, "4G", rings=1,
                                  cell_radius_m=1000.0)
        mobile = MobileDevice(sim, network, "car", Position(0, 0, 0),
                              reevaluate_every=0.5)
        mobile.start_session()
        origin_cell = mobile.serving
        # Jump next to a neighbour site.
        neighbour = network.cells[1]
        mobile.position = neighbour.center
        sim.run(until=1.0)
        assert mobile.serving is neighbour
        assert mobile.serving is not origin_cell
        assert mobile.counters.get("handoffs") == 1
        assert mobile.in_session  # continuity preserved

    def test_handoff_to_full_cell_drops(self, sim):
        network = CellularNetwork(sim, "3G", rings=1, total_channels=7,
                                  reuse_factor=7, cell_radius_m=1000.0)
        # Fill the neighbour cell first.
        neighbour = network.cells[1]
        squatter = MobileDevice(sim, network, "squatter", neighbour.center)
        assert squatter.start_session()
        mover = MobileDevice(sim, network, "mover", Position(0, 0, 0),
                             reevaluate_every=0.5)
        assert mover.start_session()
        mover.position = neighbour.center
        sim.run(until=1.0)
        assert not mover.in_session
        assert mover.counters.get("dropped") == 1

    def test_stationary_mobile_never_hands_off(self, sim):
        network = CellularNetwork(sim, "4G", rings=1)
        mobile = MobileDevice(sim, network, "desk", Position(10, 10, 0),
                              reevaluate_every=0.2)
        mobile.start_session()
        sim.run(until=5.0)
        assert mobile.counters.get("handoffs") == 0
