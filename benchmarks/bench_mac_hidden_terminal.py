"""E11 — the hidden-terminal experiment: RTS/CTS earning its keep.

Two saturated senders sit outside each other's carrier-sense range but
both in range of the middle receiver (built on an exact disc
propagation model, so the hidden relationship is strict).  With basic
access their frames collide at the receiver relentlessly; with RTS/CTS
the short reservation frames collide instead and the CTS silences the
other sender via its NAV.

Second series: fragmentation as the §4.2 error-control knob — under a
harsh per-frame error floor, smaller fragments raise delivery.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core import Position, Simulator
from repro.mac.dcf import DcfConfig, MacListener
from repro.mac.rate_adapt import fixed_rate_factory
from repro.phy.error_models import FixedPerErrorModel
from repro.scenarios import build_hidden_terminal

HORIZON = 4.0


class _Refill(MacListener):
    def __init__(self, station, destination, payload):
        self.station = station
        self.destination = destination
        self.payload = payload

    def prime(self, depth=3):
        for _ in range(depth):
            self.station.mac.send(self.destination, self.payload)

    def mac_tx_complete(self, msdu, success):
        self.station.mac.send(self.destination, self.payload)


def run_hidden(rts_threshold, payload_bytes=2000, seed=11):
    sim = Simulator(seed=seed)
    config = DcfConfig(rts_threshold_bytes=rts_threshold)
    # Pin DSSS-2 for data: a collided 2000-byte frame then wastes ~8 ms
    # of air, dwarfing the ~1 ms RTS/CTS overhead — the classic regime
    # where reservation pays.  (DSSS-1 would mask collisions entirely
    # behind its Barker spreading gain; CCK-11 makes data frames so
    # short that the 1 Mb/s control overhead eats the gain.)
    scenario = build_hidden_terminal(
        sim, mac_config=config,
        rate_factory=fixed_rate_factory("DSSS-2"))
    received = {"bytes": 0}

    def on_receive(source, payload, meta):
        received["bytes"] += len(payload)

    scenario.receiver.on_receive(on_receive)
    payload = bytes(payload_bytes)
    for sender in (scenario.sender_a, scenario.sender_b):
        refill = _Refill(sender, scenario.receiver.address, payload)
        # Chain the refill behind the device's own listener plumbing.
        sender.on_tx_complete(lambda msdu, ok, r=refill:
                              r.mac_tx_complete(msdu, ok))
        refill.prime()
    sim.run(until=HORIZON)
    drops = (scenario.sender_a.mac.counters.get("msdu_dropped")
             + scenario.sender_b.mac.counters.get("msdu_dropped"))
    timeouts = (scenario.sender_a.mac.counters.get("ack_timeouts")
                + scenario.sender_b.mac.counters.get("ack_timeouts")
                + scenario.sender_a.mac.counters.get("cts_timeouts")
                + scenario.sender_b.mac.counters.get("cts_timeouts"))
    return received["bytes"] * 8 / HORIZON, drops, timeouts


def run_comparison():
    basic = run_hidden(rts_threshold=2347)
    rts = run_hidden(rts_threshold=300)
    return basic, rts


def test_hidden_terminal_rts_rescue(benchmark, record_result):
    (basic, rts) = benchmark.pedantic(run_comparison, rounds=1,
                                      iterations=1)
    rows = [
        ["basic access", basic[0] / 1e3, basic[1], basic[2]],
        ["RTS/CTS", rts[0] / 1e3, rts[1], rts[2]],
    ]
    text = render_table(
        "E11: hidden terminals, 2 saturated senders "
        "(802.11b DSSS-2, 2000B)",
        ["access mode", "goodput kb/s", "MSDUs dropped",
         "response timeouts"],
        rows, formats=[None, ".0f", None, None])
    record_result("E11_hidden_terminal", text)

    # RTS/CTS must rescue throughput in the hidden-terminal topology:
    # collisions now cost a 20-byte RTS instead of an 8 ms data frame.
    assert rts[0] > basic[0] * 1.5
    # Retry-limit drops stay in the same ballpark (both modes lose RTS
    # or data races; what changes is the airtime each loss wastes).
    assert rts[1] < basic[1] * 2


def run_fragmentation_sweep():
    rows = []
    for threshold, label in ((2346, "off"), (1024, "1024"), (512, "512"),
                             (256, "256")):
        sim = Simulator(seed=13)
        config = DcfConfig(fragmentation_threshold_bytes=threshold,
                           short_retry_limit=4)
        # A clean (non-hidden) link with a harsh error floor that scales
        # with frame airtime via a fixed per-frame PER on full frames.
        from repro.mac.addresses import allocate_address
        from repro.mac.dcf import DcfMac
        from repro.phy.channel import Medium
        from repro.phy.propagation import FixedLoss
        from repro.phy.standards import DOT11B
        from repro.phy.transceiver import Radio

        medium = Medium(sim, FixedLoss(50.0))
        # PER grows with fragment size: model a burst-noise channel where
        # a 2000-byte frame almost always dies but a 256-byte one lives.
        def error_model_for(size):
            return FixedPerErrorModel(per=min(0.9, size / 2500.0))

        rx_radio = Radio("rx", medium, DOT11B, Position(0, 0, 0),
                         error_model=error_model_for(threshold))
        rx = DcfMac(sim, rx_radio, allocate_address(), config=config,
                    rate_factory=fixed_rate_factory("CCK-11"))
        delivered = {"count": 0}

        class _Sink(MacListener):
            def mac_receive(self, source, destination, payload, meta):
                delivered["count"] += 1

        rx.listener = _Sink()
        tx_radio = Radio("tx", medium, DOT11B, Position(1, 0, 0))
        tx = DcfMac(sim, tx_radio, allocate_address(), config=config,
                    rate_factory=fixed_rate_factory("CCK-11"))
        attempts = 40
        for _ in range(attempts):
            tx.send(rx.address, bytes(2000))
        sim.run(until=20.0)
        rows.append([label, delivered["count"] / attempts])
    return rows


def test_fragmentation_under_errors(benchmark, record_result):
    rows = benchmark.pedantic(run_fragmentation_sweep, rounds=1,
                              iterations=1)
    text = render_table(
        "E11b: fragmentation vs a size-dependent error floor "
        "(2000B MSDUs)",
        ["fragmentation threshold", "MSDU delivery ratio"],
        rows, formats=[None, ".2f"])
    record_result("E11b_fragmentation", text)
    ratios = [row[1] for row in rows]
    # Smaller fragments survive the bursty channel better.
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 0.9
