"""The committed spec files under specs/ executed verbatim.

These are the declarative conversions of the worked examples
(hidden_terminal, the jamming duty sweep, the mesh-backhaul chain) plus
the exact-vs-fast differential pair — run here exactly as committed, so
the files can never rot.
"""

import pytest

from repro.analysis.campaign import (differential_gate, ensemble_table,
                                     sweep_curve)
from repro.campaign import expand_grid, load_spec, run_campaign

ALL_SPECS = ["hidden_terminal.toml", "jamming_duty.toml",
             "mesh_chain.toml", "differential_exact.toml",
             "differential_fast.toml"]


@pytest.mark.parametrize("name", ALL_SPECS)
def test_spec_loads_and_expands(specs_dir, name):
    spec = load_spec(specs_dir / name)
    jobs = expand_grid(spec)
    assert jobs, f"{name} expands to an empty grid"
    assert len({job.key for job in jobs}) == len(jobs)


def test_hidden_terminal_campaign(specs_dir, tmp_path):
    spec = load_spec(specs_dir / "hidden_terminal.toml")
    result = run_campaign(spec, tmp_path)
    assert result.ok and result.ran == 4
    table = dict(ensemble_table(result.rows, stats=["rx_bytes"]))
    rts_off = table["rts_threshold_bytes=2347"]["rx_bytes"]
    rts_on = table["rts_threshold_bytes=256"]["rx_bytes"]
    assert rts_off.n == 2 and rts_on.n == 2
    # The paper's point: RTS/CTS rescues goodput between hidden senders.
    assert rts_on.mean > rts_off.mean


def test_jamming_duty_campaign_curve_decreases(specs_dir, tmp_path):
    spec = load_spec(specs_dir / "jamming_duty.toml")
    result = run_campaign(spec, tmp_path)
    assert result.ok and result.ran == 6
    curve = sweep_curve(result.rows, "adversaries.0.on_time",
                        "delivered_bytes")
    assert [duty for duty, _ in curve] == [2e-4, 1e-3, 1.8e-3]
    means = [point.mean for _, point in curve]
    # More jammer airtime, less goodput — the duty-cycle trade-off.
    assert means[0] > means[1] > means[2]


def test_mesh_chain_campaign(specs_dir, tmp_path):
    spec = load_spec(specs_dir / "mesh_chain.toml")
    result = run_campaign(spec, tmp_path)
    assert result.ok and result.ran == 3
    table = ensemble_table(result.rows, stats=["pdr", "converged"])
    label, summary = table[0]
    assert label == "(all)"
    assert summary["pdr"].n == 3
    assert summary["pdr"].mean > 0.5
    assert summary["converged"].mean == 4.0  # every node has full routes


def test_differential_pair_passes_its_gate(specs_dir, tmp_path):
    exact = run_campaign(load_spec(specs_dir / "differential_exact.toml"),
                         tmp_path / "exact")
    fast_spec = load_spec(specs_dir / "differential_fast.toml")
    fast = run_campaign(fast_spec, tmp_path / "fast")
    assert exact.ok and fast.ok
    tolerances = fast_spec["differential"]["tolerances"]
    assert fast_spec["differential"]["reference"] == "differential_exact"
    differential_gate(exact.rows, fast.rows, tolerances)
    # The operating point must actually exercise loss — a clean cell
    # would make the equivalence claim vacuous.
    pdrs = [float(row["stats"]["pdr"]) for row in exact.rows]
    assert all(0.0 < pdr < 1.0 for pdr in pdrs)
