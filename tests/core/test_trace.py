"""Tests for the trace log."""

from repro.core.trace import TraceLog, TraceRecord


class TestTraceLog:
    def test_record_and_iterate(self):
        log = TraceLog()
        log.record(0.5, "sta1", "tx-start", bits=100)
        log.record(0.6, "sta2", "rx-end")
        records = list(log)
        assert len(records) == 2
        assert records[0].source == "sta1"
        assert records[0].detail == {"bits": 100}

    def test_select_by_source_and_event(self):
        log = TraceLog()
        log.record(0.1, "a", "tx")
        log.record(0.2, "b", "tx")
        log.record(0.3, "a", "rx")
        assert len(log.select(source="a")) == 2
        assert len(log.select(event="tx")) == 2
        assert len(log.select(source="a", event="tx")) == 1

    def test_select_with_predicate(self):
        log = TraceLog()
        log.record(0.1, "a", "tx", size=10)
        log.record(0.2, "a", "tx", size=99)
        big = log.select(predicate=lambda r: r.detail.get("size", 0) > 50)
        assert len(big) == 1

    def test_capacity_drops_oldest(self):
        log = TraceLog(capacity=3)
        for index in range(5):
            log.record(float(index), "s", f"e{index}")
        assert len(log) == 3
        assert log.dropped == 2
        assert list(log)[0].event == "e2"

    def test_disabled_log_records_nothing(self):
        log = TraceLog(enabled=False)
        log.record(0.1, "s", "e")
        assert len(log) == 0

    def test_clear(self):
        log = TraceLog()
        log.record(0.1, "s", "e")
        log.clear()
        assert len(log) == 0

    def test_format_renders_lines(self):
        log = TraceLog()
        log.record(1e-3, "sta", "tx-start", mode="OFDM-54")
        text = log.format()
        assert "sta" in text
        assert "tx-start" in text
        assert "mode=OFDM-54" in text

    def test_format_limit_takes_tail(self):
        log = TraceLog()
        for index in range(10):
            log.record(float(index), "s", f"e{index}")
        tail = log.format(limit=2)
        assert "e8" in tail and "e9" in tail and "e7" not in tail


class TestEventMask:
    def test_enable_only_filters_event_types(self):
        log = TraceLog()
        log.enable_only("tx-start")
        log.record(0.1, "a", "tx-start")
        log.record(0.2, "a", "rx-end")
        assert len(log) == 1
        assert list(log)[0].event == "tx-start"

    def test_enable_all_events_restores_everything(self):
        log = TraceLog()
        log.enable_only("tx-start")
        log.enable_all_events()
        log.record(0.1, "a", "rx-end")
        assert len(log) == 1

    def test_wants_reflects_enabled_and_mask(self):
        log = TraceLog()
        assert log.wants("anything")
        log.enable_only("tx-start")
        assert log.wants("tx-start")
        assert not log.wants("rx-end")
        log.enabled = False
        assert not log.wants("tx-start")

    def test_filtered_events_do_not_count_as_dropped(self):
        log = TraceLog(capacity=2)
        log.enable_only("keep")
        for index in range(5):
            log.record(float(index), "s", "skip")
        assert log.dropped == 0
        for index in range(5):
            log.record(float(index), "s", "keep")
        assert len(log) == 2
        assert log.dropped == 3


class TestCapacityEviction:
    def test_dropped_counter_stays_accurate_under_sustained_overflow(self):
        log = TraceLog(capacity=10)
        for index in range(1000):
            log.record(float(index), "s", "e")
        assert len(log) == 10
        assert log.dropped == 990
        assert list(log)[0].time == 990.0

    def test_unbounded_log_never_drops(self):
        log = TraceLog(capacity=None)
        for index in range(500):
            log.record(float(index), "s", "e")
        assert len(log) == 500
        assert log.dropped == 0


class TestTraceRecord:
    def test_format_microseconds(self):
        record = TraceRecord(1.5e-6, "x", "y")
        assert "1.500us" in record.format()
