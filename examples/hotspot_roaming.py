#!/usr/bin/env python3
"""Roaming across an ESS: the Fig 1.10 scenario.

Three APs share one SSID along a 160 m corridor, bridged by a wired
distribution system.  A station associates with the first AP and then
walks the corridor while downloading from a wired server behind the
DS portal.  Watch it hand off twice without losing the flow — the DS
location table reroutes the downlink the moment the station
reassociates.

Run:  python examples/hotspot_roaming.py
"""

from repro import Simulator, scenarios
from repro.core.topology import Position
from repro.mac.addresses import MacAddress
from repro.mobility.models import LinearMobility
from repro.net.roaming import RoamingPolicy
from repro.net.station import Station
from repro.traffic.generators import CbrSource
from repro.traffic.sink import TrafficSink


def main() -> None:
    sim = Simulator(seed=7)
    corridor = scenarios.build_ess(sim, ap_count=3, spacing_m=80.0)

    walker = Station(sim, corridor.medium,
                     corridor.aps[0].radio.standard,
                     Position(2, 0, 0), name="walker",
                     roaming_policy=RoamingPolicy(
                         low_snr_threshold_db=28.0, hysteresis_db=3.0,
                         min_dwell=0.5))
    roam_log = []
    walker.on_associated(
        lambda bssid: roam_log.append((round(sim.now, 2), str(bssid))))
    walker.associate("repro-ess")
    sim.run(until=2.0)
    print(f"initially associated with {walker.serving_ap}")

    # A wired server behind the portal streams to the walker.
    server = MacAddress.from_string("00:10:20:30:40:50")
    sink = TrafficSink(sim)
    walker.on_receive(sink)
    source = CbrSource(
        sim,
        lambda p: (corridor.ess.ds.inject_from_portal(server,
                                                      walker.address, p),
                   True)[1],
        packet_bytes=800, interval=0.02)

    # Walk the corridor: 170 m at 8 m/s ~ 21 s.
    LinearMobility(sim, walker, Position(170, 0, 0), speed_mps=8.0,
                   tick=0.1).start()
    sim.run(until=30.0)

    print("association history (time s, BSSID):")
    for when, bssid in roam_log:
        print(f"  t={when:6.2f}  ->  {bssid}")
    print(f"roams: {walker.sta_counters.get('roams')}")
    flow = sink.flow(source.flow_id)
    print(f"downlink across the walk: {flow.received} packets received, "
          f"{flow.lost} lost ({100 * flow.loss_ratio:.1f}%)")
    serving = corridor.ess.locate(walker.address)
    print(f"now served by {serving.name} "
          f"(the far end of the corridor)")


if __name__ == "__main__":
    main()
