"""Legacy setup shim (the environment's setuptools predates PEP 660)."""

from setuptools import setup

setup()
