#!/usr/bin/env python3
"""A jamming and coexistence study: how much does an adversary cost?

The security chapters of the source text stop at crypto; the RF layer
is where real deployments bleed first.  This example measures three
adversaries against the same small uplink-saturated BSS:

* a **reactive jammer** parked next to the AP — it carrier-senses,
  then stomps the tail of every frame it hears, corrupting the SINR of
  in-flight receptions (per-station PDR collapse, measured),
* a **duty-cycled pulse jammer** swept from 10% to 90% duty — the
  classic duty-cycle vs. goodput trade-off curve,
* a **Bluetooth-style hopper + microwave oven** — not attackers at
  all, just the 2.4 GHz neighbours, whose cost is real but far milder.

A **monitor-mode sniffer** watches the victim channel throughout; its
capture log summarises what a passive observer (the honeypot-style
vantage point) sees of the attack.

Run:  python examples/jamming_study.py
"""

from typing import Dict, Tuple

from repro import Simulator
from repro.adversary import (
    BluetoothHopper,
    MicrowaveOven,
    MonitorRadio,
    PeriodicJammer,
    ReactiveJammer,
)
from repro.analysis import (
    aggregate_impact,
    duty_cycle_sweep,
    per_station_impact,
    render_duty_curve,
    render_impact_table,
    render_pdr_grid,
    spatial_pdr_grid,
)
from repro.core.topology import Position
from repro.scenarios import build_infrastructure_bss
from repro.traffic.generators import CbrSource
from repro.traffic.sink import TrafficSink

STATIONS = 6
HORIZON = 4.0
PACKET = 400
INTERVAL = 4e-3  # per-station offered load: 100 pkt/s


def run_cell(seed: int, attach) -> Tuple[Dict[str, Tuple[int, int]],
                                         Dict[str, Position], int]:
    """One experiment: a saturated-uplink BSS, optionally under attack.

    ``attach(sim, bss)`` installs (and starts) the adversary after
    association; return per-station (offered, delivered) counts, the
    station positions, and total delivered bytes.
    """
    sim = Simulator(seed=seed)
    bss = build_infrastructure_bss(sim, STATIONS, radius_m=15.0)
    sink = TrafficSink(sim)
    bss.ap.on_receive(lambda source, payload, meta: sink.consume(payload))
    sources = {}
    for station in bss.stations:
        sources[station.name] = CbrSource(
            sim,
            lambda p, s=station: s.associated and s.send(bss.ap.address, p),
            packet_bytes=PACKET, interval=INTERVAL)
    if attach is not None:
        attach(sim, bss)
    sim.run(until=sim.now + HORIZON)
    counts = {}
    delivered_bytes = 0
    for station in bss.stations:
        source = sources[station.name]
        flow = sink.flow(source.flow_id)
        delivered = flow.received if flow is not None else 0
        counts[station.name] = (source.generated, delivered)
        delivered_bytes += flow.bytes_received if flow is not None else 0
    positions = {station.name: station.position
                 for station in bss.stations}
    return counts, positions, delivered_bytes


def reactive_jammer_study() -> None:
    print("\n--- reactive jammer vs. victim PDR ---")
    baseline, positions, baseline_bytes = run_cell(101, None)

    capture = {}

    def attach(sim, bss) -> None:
        monitor = MonitorRadio(sim, bss.medium, bss.ap.radio.standard,
                               Position(3.0, 3.0, 0.0),
                               capture_corrupt=True)
        capture["log"] = monitor.log
        jammer = ReactiveJammer(sim, bss.medium, Position(2.0, 0.0, 0.0),
                                standard=bss.ap.radio.standard,
                                power_dbm=20.0, burst_duration=300e-6)
        capture["jammer"] = jammer
        jammer.start()

    attacked, _positions, attacked_bytes = run_cell(101, attach)
    impacts = per_station_impact(baseline, attacked)
    print(render_impact_table("per-station delivery under reactive jamming",
                              impacts))
    total = aggregate_impact(impacts)
    print(f"cell PDR {total.baseline_pdr:.3f} -> {total.attacked_pdr:.3f} "
          f"({total.degradation:.1%} of baseline delivery destroyed; "
          f"goodput ratio "
          f"{total.throughput_ratio(baseline_bytes, attacked_bytes):.2f})")
    jammer = capture["jammer"]
    print(f"jammer: {jammer.counters.get('bursts')} bursts, "
          f"{jammer.airtime_seconds():.2f} s of airtime "
          f"({jammer.airtime_seconds() / HORIZON:.0%} duty)")
    print("monitor capture:", capture["log"].summary())
    pdrs = [(positions[name], impact.attacked_pdr)
            for name, impact in impacts.items()]
    print("spatial PDR under attack (10 m cells, jammer near origin):")
    print(render_pdr_grid(spatial_pdr_grid(pdrs, cell_m=10.0)))
    assert total.attacked_pdr < total.baseline_pdr, \
        "the reactive jammer must degrade victim PDR"


def duty_cycle_study() -> None:
    print("\n--- pulse-jammer duty cycle vs. goodput ---")
    period = 2e-3

    def run_at(duty: float) -> float:
        def attach(sim, bss) -> None:
            jammer = PeriodicJammer(sim, bss.medium,
                                    Position(2.0, 0.0, 0.0),
                                    power_dbm=20.0,
                                    on_time=duty * period, period=period)
            jammer.start()
        _counts, _positions, delivered_bytes = run_cell(202, attach)
        return delivered_bytes * 8 / HORIZON

    baseline_bps = run_cell(202, None)[2] * 8 / HORIZON
    curve = duty_cycle_sweep(run_at, [0.1, 0.3, 0.5, 0.7, 0.9])
    print(f"baseline goodput: {baseline_bps:,.0f} bps")
    print(render_duty_curve(curve))


def coexistence_study() -> None:
    print("\n--- coexistence bystanders (not even trying) ---")
    baseline, _positions, baseline_bytes = run_cell(303, None)

    def attach(sim, bss) -> None:
        BluetoothHopper(sim, bss.medium, Position(5.0, 5.0, 0.0),
                        power_dbm=4.0).start()
        MicrowaveOven(sim, bss.medium, Position(-8.0, 0.0, 0.0),
                      channels=(1,), power_dbm=10.0).start()

    attacked, _positions, attacked_bytes = run_cell(303, attach)
    total = aggregate_impact(per_station_impact(baseline, attacked))
    print(f"cell PDR {total.baseline_pdr:.3f} -> {total.attacked_pdr:.3f} "
          f"with a busy piconet and a running microwave next door "
          f"(goodput ratio "
          f"{total.throughput_ratio(baseline_bytes, attacked_bytes):.2f})")


def main() -> None:
    reactive_jammer_study()
    duty_cycle_study()
    coexistence_study()


if __name__ == "__main__":
    main()
