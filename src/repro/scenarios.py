"""One-call scenario builders used by the examples and benchmarks.

Each builder wires a complete, ready-to-run topology — medium, devices,
association — so experiment code reads as *what* is measured rather
than *how* the network is assembled.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from math import cos, pi, sin
from typing import Callable, List, Optional

from .adversary.emitters import Emitter, PeriodicJammer
from .core.engine import Simulator
from .core.errors import AssociationTimeoutError, ConfigurationError, \
    SimulationError
from .core.topology import ORIGIN, Position, circle_layout, grid_layout, \
    line_layout
from .mac.dcf import DcfConfig, DcfMac, MacListener
from .mac.rate_adapt import RateControllerFactory, fixed_rate_factory
from .net.ap import AccessPoint
from .net.bss import ExtendedServiceSet, IndependentBss
from .net.ds import DistributionSystem
from .net.station import Station
from .phy.channel import Medium
from .phy.propagation import LogDistance, PropagationModel, RangePropagation
from .phy.standards import DOT11B, DOT11G, PhyStandard
from .phy.transceiver import Radio
from .routing.node import MeshConfig, MeshNode
from .routing.protocol import RoutingProtocol, StaticRouting


@dataclass
class InfrastructureBss:
    """An AP plus associated stations, ready for traffic."""

    sim: Simulator
    medium: Medium
    ap: AccessPoint
    stations: List[Station]

    def run_until_associated(self, timeout: float = 10.0) -> None:
        associate_all(self.sim, self.stations, timeout=timeout)


def associate_all(sim: Simulator, stations: List[Station],
                  timeout: float = 10.0) -> None:
    """Run the simulation until every station has associated.

    Event-driven: association hooks stop the run the instant the last
    station associates, so no events are wasted on polling and the
    returned clock is the actual association time.

    Completion is judged on the *current* association state of every
    station at each association event — not by draining a count of
    first associations.  The distinction matters under churn: a station
    that was associated at call time but disassociates mid-wait (beacon
    loss, an AP kicking it) simply keeps the wait alive until it
    re-associates, instead of turning a recoverable transient into a
    hard :class:`SimulationError` while timeout budget remains.
    """
    if all(station.associated for station in stations):
        return
    deadline = sim.now + timeout

    def _check(_bssid: object) -> None:
        if all(station.associated for station in stations):
            sim.stop()

    # Every station gets the hook (a currently-associated one may churn
    # and re-associate during the wait).  Each hook is unsubscribed
    # after the run: a late association (after a timeout) must never
    # sim.stop() an unrelated later run, and repeated associate_all
    # calls must not accumulate closures.
    unsubscribes = [station.on_associated(_check) for station in stations]
    try:
        sim.run(until=deadline)
    finally:
        for unsubscribe in unsubscribes:
            unsubscribe()
    stuck = [station for station in stations if not station.associated]
    if stuck:
        # Name the stragglers *and* their FSM states: "stuck in
        # scanning" (AP down / wrong channel) reads very differently
        # from "stuck in associating" (AP up but not answering), and
        # that difference is the first thing a failed run needs to say.
        detail = ", ".join(f"{station.name} ({station.state.value})"
                           for station in stuck)
        raise AssociationTimeoutError(
            f"{len(stuck)} of {len(stations)} stations failed to "
            f"associate within {timeout}s: {detail}", stations=stuck)


def build_infrastructure_bss(sim: Simulator, station_count: int,
                             standard: PhyStandard = DOT11G,
                             radius_m: float = 20.0,
                             ssid: str = "repro-net",
                             path_loss_exponent: float = 3.0,
                             mac_config: Optional[DcfConfig] = None,
                             rate_factory: Optional[RateControllerFactory] = None,
                             associate: bool = True,
                             ) -> InfrastructureBss:
    """An AP at the origin with ``station_count`` stations on a circle."""
    medium = Medium(sim, LogDistance(standard.band_hz,
                                     exponent=path_loss_exponent))
    ap = AccessPoint(sim, medium, standard, Position(0, 0, 0),
                     name="ap", ssid=ssid, mac_config=mac_config,
                     rate_factory=rate_factory)
    ap.start_beaconing()
    stations = []
    for index, position in enumerate(circle_layout(station_count, radius_m)):
        station = Station(sim, medium, standard, position,
                          name=f"sta{index}", mac_config=mac_config,
                          rate_factory=rate_factory)
        station.associate(ssid)
        stations.append(station)
    scenario = InfrastructureBss(sim, medium, ap, stations)
    if associate and station_count > 0:
        scenario.run_until_associated()
    return scenario


@dataclass
class AdhocNetwork:
    """An IBSS of peer stations."""

    sim: Simulator
    medium: Medium
    ibss: IndependentBss
    stations: List[Station]


def build_adhoc_network(sim: Simulator, station_count: int,
                        standard: PhyStandard = DOT11B,
                        radius_m: float = 15.0,
                        path_loss_exponent: float = 3.0,
                        mac_config: Optional[DcfConfig] = None,
                        ) -> AdhocNetwork:
    """Peer stations on a circle sharing one IBSS."""
    medium = Medium(sim, LogDistance(standard.band_hz,
                                     exponent=path_loss_exponent))
    ibss = IndependentBss.start(sim)
    stations = []
    for index, position in enumerate(circle_layout(station_count, radius_m)):
        station = Station(sim, medium, standard, position,
                          name=f"peer{index}", adhoc=True,
                          ibss_bssid=ibss.bssid, mac_config=mac_config)
        ibss.join(station)
        stations.append(station)
    return AdhocNetwork(sim, medium, ibss, stations)


@dataclass
class HiddenTerminalScenario:
    """Two senders that cannot hear each other, one receiver that hears
    both — the canonical RTS/CTS motivation."""

    sim: Simulator
    medium: Medium
    receiver: Station
    sender_a: Station
    sender_b: Station

    @property
    def stations(self) -> List[Station]:
        return [self.receiver, self.sender_a, self.sender_b]


def build_hidden_terminal(sim: Simulator,
                          standard: PhyStandard = DOT11B,
                          carrier_range_m: float = 250.0,
                          mac_config: Optional[DcfConfig] = None,
                          rate_factory: Optional[RateControllerFactory] = None,
                          ) -> HiddenTerminalScenario:
    """Senders at ±0.8R around a middle receiver: each sender hears the
    receiver but not the other sender (disc propagation makes the hidden
    relationship exact)."""
    medium = Medium(sim, RangePropagation(carrier_range_m,
                                          in_range_loss_db=60.0))
    separation = 0.8 * carrier_range_m
    ibss = IndependentBss.start(sim)
    receiver = Station(sim, medium, standard, Position(0, 0, 0),
                       name="rx", adhoc=True, ibss_bssid=ibss.bssid,
                       mac_config=mac_config, rate_factory=rate_factory)
    sender_a = Station(sim, medium, standard, Position(-separation, 0, 0),
                       name="txA", adhoc=True, ibss_bssid=ibss.bssid,
                       mac_config=mac_config, rate_factory=rate_factory)
    sender_b = Station(sim, medium, standard, Position(separation, 0, 0),
                       name="txB", adhoc=True, ibss_bssid=ibss.bssid,
                       mac_config=mac_config, rate_factory=rate_factory)
    for station in (receiver, sender_a, sender_b):
        ibss.join(station)
    return HiddenTerminalScenario(sim, medium, receiver, sender_a, sender_b)


@dataclass
class EssScenario:
    """Several APs in a line sharing one SSID over a wired DS."""

    sim: Simulator
    medium: Medium
    ess: ExtendedServiceSet
    aps: List[AccessPoint]


def chain_topology(count: int, spacing_m: float,
                   start: Position = ORIGIN) -> List[Position]:
    """Relay-chain placement: ``count`` nodes along +x, ``spacing_m``
    apart.  Pick a radio range in (spacing, 2*spacing) and only
    adjacent nodes can hear each other — the canonical multi-hop
    backhaul line."""
    if count < 2:
        raise ConfigurationError(f"a chain needs >= 2 nodes, got {count}")
    return line_layout(count, spacing_m, start=start)


def grid_topology(rows: int, cols: int, spacing_m: float,
                  start: Position = ORIGIN) -> List[Position]:
    """Mesh-grid placement: rows x cols nodes, ``spacing_m`` pitch.
    A radio range in (spacing, spacing*sqrt(2)) yields the 4-neighbor
    grid — the redundant-path topology route repair needs."""
    if rows < 1 or cols < 1:
        raise ConfigurationError(
            f"grid needs rows, cols >= 1, got {rows}x{cols}")
    return grid_layout(rows, cols, spacing_m, start=start)


@dataclass
class MeshScenario:
    """An IBSS of mesh nodes, ready for routing + traffic."""

    sim: Simulator
    medium: Medium
    ibss: IndependentBss
    nodes: List[MeshNode]
    #: The disc radio range the topology was built for.
    range_m: float

    def start_routing(self) -> None:
        """Kick every node's routing protocol (no-op for static)."""
        for node in self.nodes:
            node.protocol.start()

    def addresses(self) -> List["MacAddress"]:
        return [node.address for node in self.nodes]

    def positions(self) -> List[Position]:
        return [node.station.position for node in self.nodes]


def build_mesh_network(sim: Simulator, positions: List[Position],
                       protocol_factory: Callable[[], RoutingProtocol],
                       standard: PhyStandard = DOT11B,
                       range_m: float = 45.0,
                       mac_config: Optional[DcfConfig] = None,
                       mesh_config: Optional[MeshConfig] = None,
                       medium: Optional[Medium] = None,
                       channel_id: int = 1,
                       name_prefix: str = "mesh",
                       ) -> MeshScenario:
    """Mesh nodes at explicit positions sharing one IBSS.

    Disc (:class:`RangePropagation`) radio by default, so the
    connectivity graph is exactly the geometric one
    :func:`repro.analysis.mesh.connectivity_graph` computes — multi-hop
    is forced by geometry, not by tuning path loss.  Pass an existing
    ``medium`` (e.g. one shared with an ESS on another channel) to
    co-locate the mesh with other networks.
    """
    if medium is None:
        medium = Medium(sim, RangePropagation(range_m,
                                              in_range_loss_db=60.0))
    ibss = IndependentBss.start(sim)
    nodes = []
    for index, position in enumerate(positions):
        station = Station(sim, medium, standard, position,
                          name=f"{name_prefix}{index}", adhoc=True,
                          ibss_bssid=ibss.bssid, mac_config=mac_config,
                          channel_id=channel_id)
        ibss.join(station)
        nodes.append(MeshNode(station, protocol_factory(),
                              config=mesh_config))
    return MeshScenario(sim, medium, ibss, nodes, range_m)


def install_chain_routes(nodes: List[MeshNode]) -> None:
    """Static all-pairs routes along a chain: each node's next hop
    toward any destination is its neighbor in that direction.  Requires
    every node to run :class:`~repro.routing.protocol.StaticRouting`."""
    for index, node in enumerate(nodes):
        protocol = node.protocol
        if not isinstance(protocol, StaticRouting):
            raise ConfigurationError(
                f"{node.name}: install_chain_routes needs StaticRouting, "
                f"got {protocol.name}")
        for target_index, target in enumerate(nodes):
            if target_index == index:
                continue
            step = 1 if target_index > index else -1
            protocol.set_route(target.address,
                               nodes[index + step].address,
                               metric=abs(target_index - index))


@dataclass
class InterferenceField:
    """A saturated BSS ringed by energy emitters — the jamming workload."""

    sim: Simulator
    medium: Medium
    bss: InfrastructureBss
    emitters: List[Emitter]

    def start_emitters(self) -> None:
        for emitter in self.emitters:
            emitter.start()

    def stop_emitters(self) -> None:
        for emitter in self.emitters:
            emitter.stop()


def build_interference_field(sim: Simulator, station_count: int = 10,
                             emitter_count: int = 20,
                             standard: PhyStandard = DOT11G,
                             radius_m: float = 20.0,
                             emitter_ring_m: float = 35.0,
                             emitter_power_dbm: float = 0.0,
                             emitter_on_time: float = 300e-6,
                             emitter_period: float = 900e-6,
                             path_loss_exponent: float = 3.0,
                             mac_config: Optional[DcfConfig] = None,
                             rate_factory: Optional[RateControllerFactory]
                             = None,
                             associate: bool = True) -> InterferenceField:
    """An infrastructure BSS ringed by duty-cycled energy emitters.

    ``emitter_count`` :class:`~repro.adversary.emitters.PeriodicJammer`
    sources sit on a circle of ``emitter_ring_m`` around the AP, their
    pulse phases staggered across one period so at any instant roughly
    ``emitter_count * duty`` bursts genuinely overlap — the
    deep-arrival-table regime where the fast mode's O(1) interference
    accumulator pays off (ROADMAP: the interference-field workload).
    Emitters are built stopped; call :meth:`InterferenceField.\
start_emitters` once the BSS is associated and traffic is primed.
    """
    bss = build_infrastructure_bss(
        sim, station_count, standard=standard, radius_m=radius_m,
        path_loss_exponent=path_loss_exponent, mac_config=mac_config,
        rate_factory=rate_factory, associate=associate)
    emitters: List[Emitter] = []
    for index in range(emitter_count):
        angle = 2.0 * pi * index / emitter_count
        position = Position(emitter_ring_m * cos(angle),
                            emitter_ring_m * sin(angle), 0.0)
        emitters.append(PeriodicJammer(
            sim, bss.medium, position, power_dbm=emitter_power_dbm,
            on_time=emitter_on_time, period=emitter_period,
            offset=emitter_period * index / emitter_count,
            name=f"field{index}"))
    return InterferenceField(sim, bss.medium, bss, emitters)


def build_ess(sim: Simulator, ap_count: int, spacing_m: float = 60.0,
              standard: PhyStandard = DOT11G, ssid: str = "repro-ess",
              path_loss_exponent: float = 3.2) -> EssScenario:
    """A corridor of APs: AP k at x = k * spacing."""
    medium = Medium(sim, LogDistance(standard.band_hz,
                                     exponent=path_loss_exponent))
    ds = DistributionSystem(sim)
    ess = ExtendedServiceSet(sim, ssid, ds=ds)
    aps = []
    for index in range(ap_count):
        ap = AccessPoint(sim, medium, standard,
                         Position(index * spacing_m, 0, 0),
                         name=f"ap{index}", ssid=ssid, ds=ds)
        ess.add_ap(ap)
        # Stagger beacons so same-channel APs don't beacon in lockstep.
        ap.start_beaconing(offset=0.010 * (index + 1))
        aps.append(ap)
    return EssScenario(sim, medium, ess, aps)


# --- partition-aware city-scale builders (sharded executor) -----------------

class _CellFrameCounter(MacListener):
    """Receiver-side stats for one saturated cell."""

    def __init__(self) -> None:
        self.bytes = 0
        self.frames = 0

    def mac_receive(self, source, destination, payload: bytes, meta) -> None:
        self.bytes += len(payload)
        self.frames += 1


class _CellRefill(MacListener):
    """Keeps a cell station's queue non-empty (saturation traffic)."""

    def __init__(self, mac: DcfMac, destination, payload: bytes):
        self.mac = mac
        self.destination = destination
        self.payload = payload

    def prime(self, depth: int = 4) -> None:
        for _ in range(depth):
            self.mac.send(self.destination, self.payload)

    def mac_tx_complete(self, msdu, success: bool) -> None:
        self.mac.send(self.destination, self.payload)


def city_propagation() -> PropagationModel:
    """The city grid's path-loss model: urban log-distance, exponent 4.

    A module-level factory (not a lambda) because both executors take a
    *factory*: under sharding each worker process instantiates its own
    model, and a stateless model guarantees the workers' link budgets
    are bit-identical to the single-process reference.
    """
    return LogDistance(DOT11B.band_hz, exponent=4.0)


def saturated_cell(stations: int, payload_size: int = 800):
    """Builder for one saturated 802.11b cell (a ``CellSpec.build``).

    One receiver at the cell center, ``stations`` saturated senders on
    a 10 m circle around it — the ``dcf_saturation`` workload dropped
    at the cell's coordinates.  All addresses come from the build
    context's deterministic per-cell block and all radios sit on the
    cell's channel, which is what makes the cell placement-independent:
    the same stats whether it runs single-process or in any shard.
    """

    def build(ctx):
        cell = ctx.cell
        config = DcfConfig()
        factory = fixed_rate_factory("CCK-11")
        payload = bytes(payload_size)
        center = cell.center
        receiver_radio = Radio(f"{cell.name}-rx", ctx.medium, DOT11B,
                               center, channel_id=cell.channel)
        receiver = DcfMac(ctx.sim, receiver_radio, ctx.address(),
                          config=config, rate_factory=factory)
        counter = _CellFrameCounter()
        receiver.listener = counter
        for index, position in enumerate(
                circle_layout(stations, 10.0, center)):
            radio = Radio(f"{cell.name}-tx{index}", ctx.medium, DOT11B,
                          position, channel_id=cell.channel)
            mac = DcfMac(ctx.sim, radio, ctx.address(), config=config,
                         rate_factory=factory)
            refill = _CellRefill(mac, receiver.address, payload)
            mac.listener = refill
            refill.prime()
        return lambda: {"rx_bytes": counter.bytes,
                        "rx_frames": counter.frames}

    return build


def build_city_cells(bss_count: int = 24, stations_per_bss: int = 8, *,
                     spacing_m: float = 120.0, cell_radius_m: float = 12.0,
                     payload_size: int = 800,
                     columns: Optional[int] = None) -> List["CellSpec"]:
    """A city grid of saturated BSSes for the sharded executor.

    Cells sit on a ``spacing_m`` grid with the classic 2x2 channel-reuse
    pattern over (1, 6, 11, 14): co-channel cells are >= 2 grid pitches
    apart, which under :func:`city_propagation` (exponent-4 urban loss)
    puts their closest approach below the -110 dBm reception floor —
    every cell is an island and the partitioner proves it, so the grid
    shards with zero synchronization.  Shrink ``spacing_m`` (or raise
    the floor) to study the weakly-coupled regime instead.

    Scales from "tens of BSSes now" to hundreds: ``bss_count`` is the
    only knob, geometry and channel reuse extend unchanged.
    """
    from .parallel.partition import CellSpec
    channels = (1, 6, 11, 14)
    if columns is None:
        columns = max(1, math.isqrt(bss_count))
    cells = []
    for index in range(bss_count):
        row, column = divmod(index, columns)
        cells.append(CellSpec(
            name=f"cell{index:03d}",
            channel=channels[(row % 2) * 2 + (column % 2)],
            center=Position(column * spacing_m, row * spacing_m, 0.0),
            radius_m=cell_radius_m,
            build=saturated_cell(stations_per_bss, payload_size),
            weight=float(stations_per_bss),
        ))
    return cells
