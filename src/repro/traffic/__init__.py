"""Traffic generation and measurement sinks."""

from .generators import (
    BulkTransferSource,
    CbrSource,
    HEADER_SIZE,
    OnOffSource,
    PoissonSource,
    decode_packet,
    encode_packet,
)
from .sink import FlowStats, TrafficSink

__all__ = [
    "BulkTransferSource",
    "CbrSource",
    "FlowStats",
    "HEADER_SIZE",
    "OnOffSource",
    "PoissonSource",
    "TrafficSink",
    "decode_packet",
    "encode_packet",
]
