"""DSDV: convergence, sequence freshness, and link-break repair."""

from repro.core import Simulator
from repro.core.topology import Position
from repro.mac.addresses import MacAddress, reset_allocator
from repro.routing import (
    DsdvConfig,
    DsdvRouting,
    INFINITE_METRIC,
    encode_dsdv_update,
)
from repro import scenarios
from repro.traffic.generators import CbrSource
from repro.traffic.sink import TrafficSink


def build_dsdv_chain(sim, count, **kwargs):
    mesh = scenarios.build_mesh_network(
        sim, scenarios.chain_topology(count, 30.0), DsdvRouting,
        range_m=40.0, **kwargs)
    mesh.start_routing()
    return mesh


def diamond(sim):
    """a - {b, c} - d: two disjoint relay paths."""
    positions = [Position(0, 0, 0), Position(30, 20, 0),
                 Position(30, -20, 0), Position(60, 0, 0)]
    mesh = scenarios.build_mesh_network(sim, positions, DsdvRouting,
                                        range_m=42.0)
    mesh.start_routing()
    return mesh


class TestConvergence:
    def test_chain_converges_to_exact_metrics(self, sim):
        mesh = build_dsdv_chain(sim, count=4)
        sim.run(until=2.0)
        for index, node in enumerate(mesh.nodes):
            routes = node.protocol.routes()
            for target_index, target in enumerate(mesh.nodes):
                if target_index == index:
                    continue
                entry = routes[target.address]
                assert entry.metric == abs(target_index - index)
                step = 1 if target_index > index else -1
                assert entry.next_hop == mesh.nodes[index + step].address

    def test_sequences_stay_even_while_routes_are_alive(self, sim):
        mesh = build_dsdv_chain(sim, count=3)
        sim.run(until=2.0)
        for node in mesh.nodes:
            for entry in node.protocol.routes().values():
                assert entry.sequence % 2 == 0

    def test_traffic_started_before_convergence_is_queued_then_flows(self, sim):
        mesh = build_dsdv_chain(sim, count=4)
        sink = TrafficSink(sim)
        mesh.nodes[3].on_receive(sink)
        source = CbrSource(sim, mesh.nodes[0].sender(mesh.nodes[3].address),
                           packet_bytes=160, interval=0.02)
        sim.run(until=2.0)
        assert mesh.nodes[0].counters.get("route_misses") > 0
        # Nothing generated is lost: early packets waited for the route.
        assert sink.total_received == source.generated > 0


class TestSequenceFreshness:
    def test_stale_advertisement_cannot_downgrade_a_route(self, sim):
        mesh = build_dsdv_chain(sim, count=3)
        sim.run(until=2.0)
        a, b, c = mesh.nodes
        entry = a.protocol.routes()[c.address]
        fresh_sequence = entry.sequence
        liar = MacAddress.from_string("02:00:00:00:00:66")
        # A stale (older-sequence) but shorter-metric advert must lose.
        a.protocol.on_control(liar, encode_dsdv_update(
            [(c.address, 0, fresh_sequence - 2)]))
        after = a.protocol.routes()[c.address]
        assert after.next_hop == entry.next_hop != liar
        assert after.sequence == fresh_sequence

    def test_same_sequence_better_metric_wins(self, sim):
        mesh = build_dsdv_chain(sim, count=3)
        sim.run(until=2.0)
        a, b, c = mesh.nodes
        entry = a.protocol.routes()[c.address]
        shortcut = MacAddress.from_string("02:00:00:00:00:66")
        a.protocol.on_control(shortcut, encode_dsdv_update(
            [(c.address, 0, entry.sequence)]))
        after = a.protocol.routes()[c.address]
        assert after.next_hop == shortcut and after.metric == 1

    def test_broken_self_route_is_outrun_with_a_fresher_sequence(self, sim):
        mesh = build_dsdv_chain(sim, count=2)
        mesh.start_routing()
        sim.run(until=1.0)
        a, b = mesh.nodes
        own = a.protocol._sequence
        peer = MacAddress.from_string("02:00:00:00:00:66")
        a.protocol.on_control(peer, encode_dsdv_update(
            [(a.address, INFINITE_METRIC, own + 1)]))
        assert a.protocol._sequence > own + 1
        assert a.protocol._sequence % 2 == 0


class TestLinkBreakRepair:
    def test_traffic_resumes_after_a_relay_dies(self):
        reset_allocator()
        sim = Simulator(seed=3)
        mesh = diamond(sim)
        a, b, c, d = mesh.nodes
        sink = TrafficSink(sim)
        d.on_receive(sink)
        source = CbrSource(sim, a.sender(d.address), packet_bytes=160,
                           interval=0.02, start=0.3)
        sim.run(until=1.0)
        delivered_before = sink.total_received
        assert delivered_before > 0
        relay_address = a.protocol.routes()[d.address].next_hop
        relay = b if relay_address == b.address else c
        alternate = c if relay is b else b
        # The relay falls off a roof: move it far out of range.
        relay.station.position = Position(5000.0, 5000.0, 0.0)
        sim.run(until=3.0)
        # The break was detected through MAC retry exhaustion, poisoned,
        # and repaired through the alternate relay.
        assert a.counters.get("link_failures") >= 1
        assert a.counters.get("routes_broken") >= 1
        assert a.protocol.routes()[d.address].next_hop == alternate.address
        resumed = sink.total_received - delivered_before
        assert resumed > 50  # the flow kept going after re-convergence
        # End of run: everything generated so far was delivered except
        # the handful lost in the detection/repair window.
        assert source.generated - sink.total_received < 10

    def test_poisoned_routes_use_odd_sequences(self, sim):
        mesh = build_dsdv_chain(sim, count=3)
        sim.run(until=2.0)
        a, b, c = mesh.nodes
        a.protocol.on_link_failure(b.address)
        for entry in a.protocol.routes().values():
            assert entry.metric == INFINITE_METRIC
            assert entry.sequence % 2 == 1
        assert a.protocol.next_hop(c.address) is None


class TestControlPlane:
    def test_updates_are_rate_limited(self, sim):
        config = DsdvConfig(period=0.2, min_update_gap=0.05)
        mesh = scenarios.build_mesh_network(
            sim, scenarios.chain_topology(4, 30.0),
            lambda: DsdvRouting(config), range_m=40.0)
        mesh.start_routing()
        sim.run(until=2.0)
        for node in mesh.nodes:
            sent = node.counters.get("control_tx")
            # Hard ceiling: one update per min_update_gap.
            assert 0 < sent <= 2.0 / config.min_update_gap

    def test_stop_halts_advertisements(self, sim):
        mesh = build_dsdv_chain(sim, count=2)
        sim.run(until=1.0)
        for node in mesh.nodes:
            node.protocol.stop()
        sent = [node.counters.get("control_tx") for node in mesh.nodes]
        sim.run(until=3.0)
        assert [node.counters.get("control_tx")
                for node in mesh.nodes] == sent
